//! The discrete-event simulation loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use hcq_common::{det, EngineError, HcqError, Nanos, Result, StreamId, TupleId};
use hcq_core::{EwmaEstimator, Policy, QueueView, UnitStatics, WindowedEstimator};
use hcq_join::{Side, SymmetricHashJoin};
use hcq_metrics::{
    ClassBreakdown, OverheadTotals, QosAccumulator, QosTimeSeries, SlowdownHistogram,
};
use hcq_plan::{CompiledOpKind, GlobalPlan, OperatorSpec, Port, StreamRates};
use hcq_streams::{ArrivalSource, SourceFaultStats};

use crate::config::{
    AdaptConfig, AdaptMode, AdmissionMode, GovernorConfig, SchedulingLevel, SimConfig,
};
use crate::exec;
use crate::model::{SimModel, UnitKind};
use crate::queues::UnitQueues;
use crate::report::SimReport;
use crate::telemetry::{EngineTelemetry, MetricsSink, NoTelemetry};
use crate::trace::{NoTrace, TraceEvent, TraceSink};
use crate::tuple::SimTuple;

/// Run a complete simulation.
///
/// `sources[i]` feeds stream `i`; every stream referenced by `plan` must
/// have a source. See [`SimConfig`] for the knobs and the crate docs for an
/// end-to-end example.
pub fn simulate(
    plan: &GlobalPlan,
    rates: &StreamRates,
    sources: Vec<Box<dyn ArrivalSource>>,
    policy: Box<dyn Policy>,
    cfg: SimConfig,
) -> Result<SimReport> {
    Simulator::new(plan, rates, sources, policy, cfg)?.run()
}

/// Run a complete simulation streaming [`TraceEvent`]s into `sink`.
///
/// Identical decisions and report to [`simulate`] — the sink observes, it
/// never steers. Returns the sink alongside the report so buffering sinks
/// (e.g. [`crate::trace::JsonlTrace`]) can be finished/inspected.
pub fn simulate_traced<S: TraceSink>(
    plan: &GlobalPlan,
    rates: &StreamRates,
    sources: Vec<Box<dyn ArrivalSource>>,
    policy: Box<dyn Policy>,
    cfg: SimConfig,
    sink: S,
) -> Result<(SimReport, S)> {
    Simulator::with_sink(plan, rates, sources, policy, cfg, sink)?.run_with_sink()
}

/// Run a complete simulation sampling [`hcq_metrics::TelemetrySnapshot`]s
/// into `metrics` every [`SimConfig::telemetry_cadence`] of virtual time.
///
/// Identical decisions and report to [`simulate`] — telemetry observes, it
/// never steers. Returns the sink alongside the report so buffering sinks
/// (e.g. [`crate::telemetry::JsonlTelemetry`]) can be finished/inspected.
pub fn simulate_monitored<M: MetricsSink>(
    plan: &GlobalPlan,
    rates: &StreamRates,
    sources: Vec<Box<dyn ArrivalSource>>,
    policy: Box<dyn Policy>,
    cfg: SimConfig,
    metrics: M,
) -> Result<(SimReport, M)> {
    Simulator::with_instrumentation(plan, rates, sources, policy, cfg, NoTrace, metrics)?
        .run_instrumented()
        .map(|(report, _, metrics)| (report, metrics))
}

/// The admission-mode ladder the governor walks. Level 0 is the most
/// permissive; each escalation step sheds load more aggressively.
const LADDER: [AdmissionMode; 3] = [
    AdmissionMode::Unbounded,
    AdmissionMode::DropTail,
    AdmissionMode::QosShed,
];

/// Ladder level of a mode (its index in [`LADDER`]).
fn ladder_level(mode: AdmissionMode) -> u8 {
    match mode {
        AdmissionMode::Unbounded => 0,
        AdmissionMode::DropTail => 1,
        AdmissionMode::QosShed => 2,
    }
}

/// Stable mode names for trace events.
fn mode_name(mode: AdmissionMode) -> &'static str {
    match mode {
        AdmissionMode::Unbounded => "Unbounded",
        AdmissionMode::DropTail => "DropTail",
        AdmissionMode::QosShed => "QosShed",
    }
}

/// Live state of the closed-loop overload governor. Boxed behind an
/// `Option` on the simulator so a governor-disabled run carries one null
/// pointer and is bit-identical to an engine without the feature.
struct GovernorState {
    cfg: GovernorConfig,
    /// Next cadence boundary at which to take a decision.
    next_decision: Nanos,
    /// Instant of the last mode transition (`None` before the first).
    last_transition: Option<Nanos>,
    /// Ladder floor: the configured base admission mode's level. The
    /// governor never de-escalates below it.
    floor: u8,
    /// Current ladder level.
    level: u8,
    /// Virtual time spent at or above the watermark since the last
    /// decision (the hysteresis signal's numerator).
    window_overload: Nanos,
    /// Instant the current accumulation window opened (the last time
    /// `window_overload` was zeroed). A window is *complete* only once a
    /// full cadence of observation has elapsed since then; caught-up
    /// decision boundaries processed in one `govern` call all see the same
    /// clock, so their windows are empty and must not be read as calm.
    window_start: Nanos,
    /// Mode transitions taken so far.
    transitions: u64,
    /// Consecutive complete windows with overload share at or above
    /// [`GovernorConfig::switch_share`].
    high_streak: u32,
    /// Consecutive complete windows with overload share at or below
    /// [`GovernorConfig::return_share`].
    low_streak: u32,
    /// The base policy, parked while the overload policy is engaged.
    standby: Option<Box<dyn Policy>>,
    /// Instant of the last policy switch (`None` before the first).
    last_switch: Option<Nanos>,
    /// Policy switches taken so far (engage and disengage each count).
    switches: u64,
}

/// Live state of the online statistics estimator. Boxed behind an `Option`
/// on the simulator so an adaptation-disabled run carries one null pointer
/// and is bit-identical to an engine without the feature.
struct AdaptState {
    cfg: AdaptConfig,
    /// Next cadence boundary at which to publish re-estimates.
    next_flush: Nanos,
    /// Per-unit EWMA estimators ([`AdaptMode::Ewma`]; empty otherwise).
    /// These smooth across cadence-window *means*, not raw observations:
    /// per-execution cost is heavily bimodal (a tuple dropped by the entry
    /// operator versus one that runs the full pipeline), and feeding raw
    /// samples makes priorities thrash hard enough to lose QoS outright.
    ewma: Vec<EwmaEstimator>,
    /// Per-unit in-window accumulators (both modes): the open cadence
    /// window's running sums, folded into `ewma` or read directly at flush.
    windowed: Vec<WindowedEstimator>,
    /// The statics as the policy currently knows them: plan statics at
    /// registration, then whatever was last published.
    current: Vec<UnitStatics>,
    /// Observations per unit since the last flush boundary.
    fresh: Vec<u64>,
    /// Span of the positive priority coordinates `Φ` at registration —
    /// the engine's view of the domain a clustered policy froze. Published
    /// estimates drifting outside `[lo/f, hi·f]` trigger a refreeze.
    phi_lo: f64,
    phi_hi: f64,
    /// Statics publications forwarded to the policy.
    statics_updates: u64,
    /// Priority-domain refreezes the policy acknowledged.
    refreezes: u64,
}

impl AdaptState {
    /// Record one observed unit execution: total charged cost and tuples
    /// emitted while the unit ran one input tuple.
    fn observe(&mut self, unit: u32, cost: Nanos, produced: f64) {
        let u = unit as usize;
        self.windowed[u].observe(cost, produced);
        self.fresh[u] += 1;
    }

    /// The current estimate for `unit`: smoothed (EWMA) or the open
    /// window's mean, falling back to the last published statics when the
    /// window is empty. `ideal_time` is never re-estimated.
    fn estimate_of(&self, unit: usize) -> UnitStatics {
        let base = self.current[unit];
        let ideal = Nanos::from_nanos(base.ideal_time_ns.round() as u64);
        match self.cfg.mode {
            AdaptMode::Ewma => {
                let e = &self.ewma[unit];
                UnitStatics::new(e.selectivity(), e.cost(), ideal)
            }
            AdaptMode::Windowed => {
                let w = &self.windowed[unit];
                match (w.cost(), w.selectivity()) {
                    (Some(c), Some(s)) => UnitStatics::new(s, c, ideal),
                    _ => base,
                }
            }
        }
    }

    /// Re-anchor the tracked Φ span to the currently published statics,
    /// so a single drifted unit does not re-trigger every flush.
    fn reanchor_phi_span(&mut self) {
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for s in &self.current {
            let p = s.sanitized_phi();
            if p > 0.0 {
                lo = lo.min(p);
            }
            hi = hi.max(p);
        }
        self.phi_lo = if lo.is_finite() { lo } else { 0.0 };
        self.phi_hi = hi;
    }
}

/// A tuple quarantined after a transient operator failure, waiting for its
/// cooldown to elapse before re-admission.
struct Parked {
    release: Nanos,
    /// Park ordinal: ties on `release` pop in park order, keeping the
    /// release sequence deterministic.
    seq: u64,
    unit: u32,
    tuple: SimTuple,
}

impl PartialEq for Parked {
    fn eq(&self, other: &Self) -> bool {
        (self.release, self.seq) == (other.release, other.seq)
    }
}
impl Eq for Parked {}
impl PartialOrd for Parked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Parked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.release, self.seq).cmp(&(other.release, other.seq))
    }
}

/// The simulator. Most callers use [`simulate`]; the struct is public for
/// step-wise tests and custom instrumentation. The `S` parameter is the
/// trace sink and `M` the telemetry sink: the defaults ([`NoTrace`],
/// [`NoTelemetry`]) compile every emission and sampling site out.
pub struct Simulator<S: TraceSink = NoTrace, M: MetricsSink = NoTelemetry> {
    model: SimModel,
    policy: Box<dyn Policy>,
    queues: UnitQueues,
    sources: Vec<Box<dyn ArrivalSource>>,
    /// `(next arrival, stream)` min-heap.
    upcoming: BinaryHeap<Reverse<(Nanos, usize)>>,
    /// One symmetric hash join per query (the engine supports ≤ 1).
    joins: Vec<Option<(usize, SymmetricHashJoin<SimTuple>)>>,
    /// Operator-level only: `op_units[query][op]` = unit id.
    op_units: Vec<Vec<u32>>,
    cfg: SimConfig,
    sched_cost: Nanos,
    /// `ideal_times[query]` = `T_k`, hoisted out of the per-emission path
    /// (`stats` is indexed on every emit and every shared-group fan-out).
    ideal_times: Vec<Nanos>,
    /// Per-unit static HNR priority `S/(C̄·T)` — the QoS-shedding victim
    /// metric (the unit whose tuples contribute least slowdown QoS per unit
    /// of work sheds first).
    shed_priority: Vec<f64>,
    /// Scratch buffer for join probe results, reused across probes so the
    /// hot path does not allocate a fresh `Vec` per arriving tuple.
    probe_buf: Vec<SimTuple>,
    /// Per-query deadline, hoisted from the plans (all `None` unless a
    /// query used `with_deadline`, in which case head tuples past budget
    /// expire at dequeue).
    deadlines: Vec<Option<Nanos>>,
    /// Whether any query carries a deadline (skips the per-dequeue lookup
    /// entirely for deadline-free workloads).
    any_deadline: bool,

    /// Live admission state. Initialized from [`SimConfig::overload`]; the
    /// governor (when enabled) moves `admission_mode` along the ladder.
    admission_mode: AdmissionMode,
    admission_capacity: usize,
    admission_watermark: usize,
    /// The closed-loop governor; `None` when disabled.
    governor: Option<Box<GovernorState>>,
    /// The online statistics estimator; `None` when disabled.
    adapt: Option<Box<AdaptState>>,

    /// Drifting-statics runtime: the factors currently in force and the
    /// next [`crate::config::DriftStep`] not yet applied. Both factors are
    /// exactly `1.0` until a step installs them, so the drift-free hot path
    /// is a single float compare.
    drift_cost: f64,
    drift_sel: f64,
    drift_idx: usize,

    /// Tuples quarantined by transient operator failures, keyed by release
    /// time; min-heap.
    parked: BinaryHeap<Reverse<Parked>>,
    park_seq: u64,
    /// Failed-attempt counts per `(unit, tuple id)`, touched only on
    /// failures — the happy path never inserts.
    fail_attempts: HashMap<(u32, u64), u32>,

    clock: Nanos,
    /// Ids for composite tuples (top bit set, so they never collide with
    /// arrival ids and are minted independently of arrival numbering).
    composite_counter: u64,
    arrivals_injected: u64,

    qos: QosAccumulator,
    classes: ClassBreakdown,
    histogram: SlowdownHistogram,
    series: Option<QosTimeSeries>,
    emitted: u64,
    dropped: u64,
    shed: u64,
    /// Tuples expired at dequeue past their query's deadline.
    expired: u64,
    /// Transient operator failures injected.
    op_failures: u64,
    /// Total virtual time tuples spent quarantined after failures.
    quarantine_time: Nanos,
    sched_points: u64,
    sched_ops: u64,
    /// Itemized scheduler work (per-kind counters), always accumulated —
    /// five integer adds per scheduling point, independent of tracing.
    overhead: OverheadTotals,
    overhead_time: Nanos,
    busy_time: Nanos,
    /// Virtual time spent with total pending load at or above the
    /// configured watermark (0 when no watermark is set).
    overload_time: Nanos,
    /// Integral of pending-tuple count over virtual time (tuple·ns), for
    /// time-averaged memory; updated whenever the clock advances.
    pending_area: f64,
    peak_pending: usize,

    sink: S,
    /// Emit/Shed events produced while a unit executes, replayed after the
    /// enclosing `UnitRun` so a reader always sees the run before its
    /// outputs. Empty and untouched when `S::ENABLED` is false.
    trace_buf: Vec<TraceEvent>,
    /// True while inside `execute_unit` (events route to `trace_buf`).
    trace_buffering: bool,
    /// The unit currently executing (attributes `Emit` events).
    current_unit: u32,

    metrics: M,
    /// The instrument set, built only when `M::ENABLED` (boxed so the
    /// unmonitored simulator carries one pointer, not the whole registry).
    telemetry: Option<Box<EngineTelemetry>>,
}

impl Simulator<NoTrace, NoTelemetry> {
    /// Build an untraced, unmonitored simulator; validates the
    /// plan/source/level combination.
    pub fn new(
        plan: &GlobalPlan,
        rates: &StreamRates,
        sources: Vec<Box<dyn ArrivalSource>>,
        policy: Box<dyn Policy>,
        cfg: SimConfig,
    ) -> Result<Self> {
        Self::with_sink(plan, rates, sources, policy, cfg, NoTrace)
    }
}

impl<S: TraceSink> Simulator<S, NoTelemetry> {
    /// Build a simulator that streams [`TraceEvent`]s into `sink`.
    pub fn with_sink(
        plan: &GlobalPlan,
        rates: &StreamRates,
        sources: Vec<Box<dyn ArrivalSource>>,
        policy: Box<dyn Policy>,
        cfg: SimConfig,
        sink: S,
    ) -> Result<Self> {
        Self::with_instrumentation(plan, rates, sources, policy, cfg, sink, NoTelemetry)
    }
}

impl<S: TraceSink, M: MetricsSink> Simulator<S, M> {
    /// Build a fully instrumented simulator: `sink` receives per-event
    /// [`TraceEvent`]s, `metrics` receives per-cadence snapshots.
    pub fn with_instrumentation(
        plan: &GlobalPlan,
        rates: &StreamRates,
        mut sources: Vec<Box<dyn ArrivalSource>>,
        mut policy: Box<dyn Policy>,
        cfg: SimConfig,
        sink: S,
        metrics: M,
    ) -> Result<Self> {
        if cfg.overload.mode != AdmissionMode::Unbounded && cfg.overload.capacity == 0 {
            return Err(HcqError::config(format!(
                "admission mode {:?} requires a per-unit capacity of at least 1",
                cfg.overload.mode
            )));
        }
        if cfg.governor.enabled {
            if cfg.governor.capacity == 0 {
                return Err(HcqError::config(
                    "the governor needs a per-unit capacity of at least 1 \
                     for its bounded modes"
                        .to_string(),
                ));
            }
            if cfg.governor.cadence.is_zero() || cfg.governor.min_dwell.is_zero() {
                return Err(HcqError::config(
                    "governor cadence and min_dwell must be positive".to_string(),
                ));
            }
            if cfg.governor.switch_policy {
                if cfg.governor.switch_share <= cfg.governor.return_share {
                    return Err(HcqError::config(
                        "policy switching needs switch_share > return_share \
                         (hysteresis band)"
                            .to_string(),
                    ));
                }
                if cfg.governor.switch_sustain == 0 {
                    return Err(HcqError::config(
                        "policy switching needs switch_sustain of at least 1".to_string(),
                    ));
                }
            }
        }
        if cfg.adapt.enabled {
            if cfg.adapt.cadence.is_zero() {
                return Err(HcqError::config(
                    "adaptation cadence must be positive".to_string(),
                ));
            }
            if !(cfg.adapt.alpha > 0.0 && cfg.adapt.alpha <= 1.0) {
                return Err(HcqError::config(
                    "adaptation alpha must be in (0, 1]".to_string(),
                ));
            }
            if cfg.adapt.refreeze_factor < 1.0 || cfg.adapt.refreeze_factor.is_nan() {
                return Err(HcqError::config(
                    "adaptation refreeze_factor must be at least 1".to_string(),
                ));
            }
        }
        if cfg.faults.op_failure_prob > 0.0 && cfg.faults.op_failure_cooldown.is_zero() {
            return Err(HcqError::config(
                "op-failure injection needs a positive cooldown".to_string(),
            ));
        }
        let model = SimModel::build(plan, rates, cfg.level, cfg.sharing)?;
        for (s, routes) in model.routes.iter().enumerate() {
            if !routes.is_empty() && s >= sources.len() {
                return Err(HcqError::config(format!(
                    "stream {} is referenced by the plan but has no source",
                    StreamId::new(s)
                )));
            }
        }
        let mut upcoming = BinaryHeap::new();
        for (s, src) in sources.iter_mut().enumerate() {
            if let Some(t) = src.next_arrival() {
                upcoming.push(Reverse((t, s)));
            }
        }
        let mut joins = Vec::with_capacity(model.compiled.len());
        for (qi, cq) in model.compiled.iter().enumerate() {
            joins.push(match cq.join_indices().first() {
                Some(&ji) => match &cq.ops[ji].kind {
                    CompiledOpKind::Join(j) => Some((ji, SymmetricHashJoin::new(j.window))),
                    _ => {
                        return Err(HcqError::plan(format!(
                            "query Q{qi}: join index {ji} does not point at a join operator"
                        )))
                    }
                },
                None => None,
            });
        }
        let mut op_units: Vec<Vec<u32>> = Vec::new();
        if cfg.level == SchedulingLevel::Operator {
            op_units = model
                .compiled
                .iter()
                .map(|cq| vec![u32::MAX; cq.ops.len()])
                .collect();
            for (uid, unit) in model.units.iter().enumerate() {
                if let UnitKind::Operator { query, op } = unit.kind {
                    op_units[query][op] = uid as u32;
                }
            }
        }
        let sched_cost = cfg.sched_op_cost.unwrap_or(model.min_op_cost);
        let series = cfg.sample_window.map(QosTimeSeries::new);
        let unit_statics = model.unit_statics();
        policy.on_register(&unit_statics);
        let shed_priority = unit_statics.iter().map(|u| u.hnr_priority()).collect();
        let n_units = model.unit_count();
        let ideal_times = model.stats.iter().map(|s| s.ideal_time).collect();
        let deadlines: Vec<Option<Nanos>> = plan.queries.iter().map(|q| q.deadline).collect();
        let any_deadline = deadlines.iter().any(|d| d.is_some());
        // Live admission state: the governor moves the mode along the
        // ladder; capacity and watermark are fixed at the base values when
        // set, else the governor's.
        let admission_mode = cfg.overload.mode;
        let admission_capacity = if cfg.overload.capacity > 0 {
            cfg.overload.capacity
        } else {
            cfg.governor.capacity
        };
        let admission_watermark = if cfg.overload.watermark > 0 {
            cfg.overload.watermark
        } else {
            cfg.governor.watermark
        };
        let governor = cfg.governor.enabled.then(|| {
            Box::new(GovernorState {
                cfg: cfg.governor,
                next_decision: cfg.governor.cadence,
                last_transition: None,
                floor: ladder_level(cfg.overload.mode),
                level: ladder_level(cfg.overload.mode),
                window_overload: Nanos::ZERO,
                window_start: Nanos::ZERO,
                transitions: 0,
                high_streak: 0,
                low_streak: 0,
                standby: None,
                last_switch: None,
                switches: 0,
            })
        });
        let adapt = cfg.adapt.enabled.then(|| {
            let mut state = Box::new(AdaptState {
                cfg: cfg.adapt,
                next_flush: cfg.adapt.cadence,
                ewma: match cfg.adapt.mode {
                    AdaptMode::Ewma => unit_statics
                        .iter()
                        .map(|s| {
                            EwmaEstimator::new(
                                cfg.adapt.alpha,
                                Nanos::from_nanos(s.avg_cost_ns.round() as u64),
                                s.selectivity,
                            )
                        })
                        .collect(),
                    AdaptMode::Windowed => Vec::new(),
                },
                windowed: vec![WindowedEstimator::new(); unit_statics.len()],
                current: unit_statics.clone(),
                fresh: vec![0; unit_statics.len()],
                phi_lo: 0.0,
                phi_hi: 0.0,
                statics_updates: 0,
                refreezes: 0,
            });
            state.reanchor_phi_span();
            state
        });
        let queues = if cfg.overload.mode != AdmissionMode::Unbounded || cfg.governor.enabled {
            UnitQueues::bounded(n_units, admission_capacity)
        } else {
            UnitQueues::new(n_units)
        };
        let telemetry = if M::ENABLED {
            Some(Box::new(EngineTelemetry::new(
                n_units,
                model.compiled.len(),
                &cfg,
            )))
        } else {
            None
        };
        Ok(Simulator {
            model,
            policy,
            queues,
            sources,
            upcoming,
            joins,
            op_units,
            cfg,
            sched_cost,
            ideal_times,
            shed_priority,
            probe_buf: Vec::new(),
            deadlines,
            any_deadline,
            admission_mode,
            admission_capacity,
            admission_watermark,
            governor,
            adapt,
            drift_cost: 1.0,
            drift_sel: 1.0,
            drift_idx: 0,
            parked: BinaryHeap::new(),
            park_seq: 0,
            fail_attempts: HashMap::new(),
            clock: Nanos::ZERO,
            composite_counter: 0,
            arrivals_injected: 0,
            qos: QosAccumulator::new(),
            classes: ClassBreakdown::new(),
            histogram: SlowdownHistogram::default(),
            series,
            emitted: 0,
            dropped: 0,
            shed: 0,
            expired: 0,
            op_failures: 0,
            quarantine_time: Nanos::ZERO,
            sched_points: 0,
            sched_ops: 0,
            overhead: OverheadTotals::new(),
            overhead_time: Nanos::ZERO,
            busy_time: Nanos::ZERO,
            overload_time: Nanos::ZERO,
            pending_area: 0.0,
            peak_pending: 0,
            sink,
            trace_buf: Vec::new(),
            trace_buffering: false,
            current_unit: 0,
            metrics,
            telemetry,
        })
    }

    /// Install fresh statics for one unit mid-run — the §10 adaptive path
    /// (online cost/selectivity re-estimation) crossing the queue/policy
    /// boundary. Refreshes the engine's own derived state (the QoS-shedding
    /// victim priority) and forwards to the policy's incremental
    /// [`Policy::on_statics_update`] hook, so a clustered policy re-buckets
    /// only the affected unit instead of rebuilding its priority domain.
    pub fn update_unit_statics(&mut self, unit: u32, statics: UnitStatics) {
        self.shed_priority[unit as usize] = statics.hnr_priority();
        if let Some(a) = self.adapt.as_mut() {
            a.current[unit as usize] = statics;
        }
        self.policy.on_statics_update(unit, &statics);
    }

    /// Route an event: buffered while a unit executes, straight to the sink
    /// otherwise. Call sites guard with `S::ENABLED` so event construction
    /// itself is compiled out for [`NoTrace`].
    fn trace(&mut self, event: TraceEvent) {
        if S::ENABLED {
            if self.trace_buffering {
                self.trace_buf.push(event);
            } else {
                self.sink.event(&event);
            }
        }
    }

    /// Run to completion and report.
    ///
    /// Errors only on a policy ⇄ engine contract violation (a
    /// [`hcq_common::EngineError`] wrapped as [`HcqError::Engine`]): no
    /// selection while work is pending, or a selected unit with an empty
    /// queue. The built-in policies never trigger these; external
    /// embeddings and fault harnesses get a value instead of a panic.
    pub fn run(self) -> Result<SimReport> {
        self.run_with_sink().map(|(report, _)| report)
    }

    /// [`run`](Self::run), but also hand back the trace sink so buffered
    /// events can be inspected or flushed.
    pub fn run_with_sink(self) -> Result<(SimReport, S)> {
        self.run_instrumented()
            .map(|(report, sink, _)| (report, sink))
    }

    /// [`run`](Self::run), handing back both instrumentation sinks.
    pub fn run_instrumented(mut self) -> Result<(SimReport, S, M)> {
        // Steps scheduled at t=0 are in force before the first charge.
        if self.drift_idx < self.cfg.drift.len() {
            self.apply_due_drift();
        }
        if S::ENABLED && self.cfg.faults.cost_miscalibration > 0.0 {
            let magnitude = self.cfg.faults.cost_miscalibration;
            self.trace(TraceEvent::Fault {
                at: Nanos::ZERO,
                kind: "cost_miscalibration",
                magnitude,
            });
        }
        if S::ENABLED && self.cfg.faults.op_failure_prob > 0.0 {
            let magnitude = self.cfg.faults.op_failure_prob;
            self.trace(TraceEvent::Fault {
                at: Nanos::ZERO,
                kind: "op_failure",
                magnitude,
            });
        }
        loop {
            self.deliver_due_arrivals();
            self.release_parked_due();
            if M::ENABLED {
                self.sample_telemetry();
            }
            if self.governor.is_some() {
                self.govern();
            }
            if self.adapt.is_some() {
                self.adapt_flush();
            }
            if self.queues.all_empty() {
                // Idle: jump to the next event — an arrival or a parked
                // release — or finish.
                let next_arrival = if self.arrivals_injected < self.cfg.max_arrivals {
                    self.peek_next_arrival()
                } else {
                    None
                };
                let next_release = if self.cfg.drain || next_arrival.is_some() {
                    self.parked.peek().map(|Reverse(p)| p.release)
                } else {
                    // Not draining and arrivals exhausted: quarantined
                    // tuples stay parked and count as pending at the end.
                    None
                };
                let target = match (next_arrival, next_release) {
                    (Some(a), Some(r)) => Some(a.min(r)),
                    (Some(a), None) => Some(a),
                    (None, r) => r,
                };
                match target {
                    Some(t) => {
                        self.advance_clock(self.clock.max(t));
                        continue;
                    }
                    None => break,
                }
            }
            if !self.cfg.drain && self.arrivals_injected >= self.cfg.max_arrivals {
                break;
            }
            let selection =
                self.policy
                    .select(&self.queues, self.clock)
                    .ok_or(EngineError::NoSelection {
                        pending: self.queues.pending(),
                    })?;
            self.sched_points += 1;
            self.sched_ops += selection.ops_counted;
            let st = selection.stats;
            self.overhead.record(
                st.candidates_scanned,
                st.priority_evals,
                st.comparisons,
                st.cluster_ops,
                st.heap_ops,
            );
            let charged = if self.cfg.charge_overhead {
                self.sched_cost * selection.ops_counted
            } else {
                Nanos::ZERO
            };
            if S::ENABLED {
                self.trace(TraceEvent::SchedulingPoint {
                    at: self.clock,
                    candidates_scanned: st.candidates_scanned,
                    priority_evals: st.priority_evals,
                    comparisons: st.comparisons,
                    cluster_ops: st.cluster_ops,
                    heap_ops: st.heap_ops,
                    charged,
                });
            }
            if self.cfg.charge_overhead {
                self.advance_clock(self.clock + charged);
                self.overhead_time += charged;
            }
            for unit in selection.units {
                self.execute_unit(unit)?;
            }
        }
        if M::ENABLED {
            self.final_sample();
        }
        // Source-side fault accounting: clip every scheduled fault window
        // against the final clock so schedule and report reconcile even when
        // a window extends past the end of the run.
        let mut source_stats = SourceFaultStats::default();
        for s in &self.sources {
            source_stats.absorb(s.fault_stats());
        }
        let mut fault_stall_time = Nanos::ZERO;
        let mut fault_stall_truncated = Nanos::ZERO;
        for &(start, end) in &source_stats.windows {
            let in_run_end = end.min(self.clock);
            if in_run_end > start {
                fault_stall_time += in_run_end - start;
            }
            if end > self.clock {
                fault_stall_truncated += end - self.clock.max(start);
            }
        }
        let report = SimReport {
            qos: self.qos.summary(),
            classes: self.classes,
            histogram: self.histogram,
            series: self.series,
            arrivals: self.arrivals_injected,
            emitted: self.emitted,
            dropped: self.dropped,
            shed: self.shed,
            expired: self.expired,
            op_failures: self.op_failures,
            quarantine_time: self.quarantine_time,
            governor_transitions: self.governor.as_ref().map_or(0, |g| g.transitions),
            policy_switches: self.governor.as_ref().map_or(0, |g| g.switches),
            statics_updates: self.adapt.as_ref().map_or(0, |a| a.statics_updates),
            domain_refreezes: self.adapt.as_ref().map_or(0, |a| a.refreezes),
            estimates: self.adapt.as_ref().map(|a| {
                (0..self.model.unit_count())
                    .map(|u| a.estimate_of(u))
                    .collect()
            }),
            fault_stall_time,
            fault_stall_truncated,
            source_disconnects: source_stats.disconnects,
            source_retry_attempts: source_stats.retry_attempts,
            source_lost_arrivals: source_stats.lost_arrivals,
            sched_points: self.sched_points,
            sched_ops: self.sched_ops,
            overhead: self.overhead,
            overhead_time: self.overhead_time,
            busy_time: self.busy_time,
            overload_time: self.overload_time,
            end_time: self.clock,
            avg_pending: if self.clock.is_zero() {
                0.0
            } else {
                self.pending_area / self.clock.as_nanos() as f64
            },
            peak_pending: self.peak_pending,
            // Quarantined tuples are still in flight: they count as pending
            // so conservation holds when a run ends mid-cooldown.
            pending_end: self.queues.pending() + self.parked.len(),
        };
        Ok((report, self.sink, self.metrics))
    }

    /// Emit a snapshot for every cadence boundary the clock has reached.
    /// Snapshots are stamped at the boundary; the state they carry is read
    /// at the first scheduling point at or after it (queue contents are
    /// constant between events, so nothing is missed). The instrument set
    /// is taken out of `self` for the duration because `record_state`
    /// re-borrows the simulator.
    fn sample_telemetry(&mut self) {
        let Some(mut t) = self.telemetry.take() else {
            return;
        };
        while self.clock >= t.next_sample {
            let at = t.next_sample;
            t.next_sample = at + t.cadence;
            self.record_state(&mut t);
            self.metrics.sample(&t.registry.snapshot(at));
        }
        self.telemetry = Some(t);
    }

    /// The closing snapshot, stamped at the run's end time, so the last
    /// sample's counters reconcile exactly with the [`SimReport`].
    fn final_sample(&mut self) {
        let Some(mut t) = self.telemetry.take() else {
            return;
        };
        self.record_state(&mut t);
        self.metrics.sample(&t.registry.snapshot(self.clock));
        self.telemetry = Some(t);
    }

    /// Load every counter and gauge from live simulator state. Summary
    /// instruments are fed incrementally by [`Self::emit`] instead.
    fn record_state(&self, t: &mut EngineTelemetry) {
        let reg = &mut t.registry;
        reg.set_counter(t.arrivals, self.arrivals_injected);
        reg.set_counter(t.emitted, self.emitted);
        reg.set_counter(t.dropped, self.dropped);
        reg.set_counter(t.shed, self.shed);
        reg.set_counter(t.sched_points, self.sched_points);
        reg.set_counter(t.busy_ns, self.busy_time.as_nanos());
        reg.set_counter(t.overhead_ns, self.overhead_time.as_nanos());
        reg.set_counter(t.overload_ns, self.overload_time.as_nanos());
        reg.set_counter(t.expired, self.expired);
        reg.set_counter(t.op_failures, self.op_failures);
        reg.set_counter(t.quarantine_ns, self.quarantine_time.as_nanos());
        reg.set_counter(
            t.governor_transitions,
            self.governor.as_ref().map_or(0, |g| g.transitions),
        );
        reg.set_counter(
            t.policy_switches,
            self.governor.as_ref().map_or(0, |g| g.switches),
        );
        reg.set_counter(
            t.statics_updates,
            self.adapt.as_ref().map_or(0, |a| a.statics_updates),
        );
        reg.set_counter(
            t.domain_refreezes,
            self.adapt.as_ref().map_or(0, |a| a.refreezes),
        );
        reg.set_gauge(t.pending, self.queues.pending() as f64);
        reg.set_gauge(t.peak_pending, self.peak_pending as f64);
        reg.set_gauge(
            t.governor_mode,
            f64::from(ladder_level(self.admission_mode)),
        );
        let utilization = if self.clock.is_zero() {
            0.0
        } else {
            (self.busy_time + self.overhead_time).ratio(self.clock)
        };
        reg.set_gauge(t.utilization, utilization);
        for u in 0..t.queue_depth.len() {
            let unit = u as u32;
            reg.set_gauge(t.queue_depth[u], self.queues.len(unit) as f64);
            let age = self.queues.head_arrival(unit).map_or(0.0, |a| {
                self.clock.saturating_since(a).as_nanos() as f64 / 1e9
            });
            reg.set_gauge(t.backlog_age[u], age);
        }
    }

    /// Advance the virtual clock, integrating the pending-tuple count over
    /// the elapsed span (queue contents are constant between events).
    fn advance_clock(&mut self, target: Nanos) {
        debug_assert!(target >= self.clock);
        let span = target.saturating_since(self.clock);
        let pending = self.queues.pending();
        self.pending_area += pending as f64 * span.as_nanos() as f64;
        let watermark = self.admission_watermark;
        if watermark > 0 && pending >= watermark {
            self.overload_time += span;
            if let Some(g) = self.governor.as_mut() {
                g.window_overload += span;
            }
        }
        self.clock = target;
        if self.drift_idx < self.cfg.drift.len() {
            self.apply_due_drift();
        }
    }

    /// Install every drift step whose instant the clock has reached. Steps
    /// are validated sorted, so the factors in force are always those of
    /// the latest due step.
    fn apply_due_drift(&mut self) {
        while self.drift_idx < self.cfg.drift.len() {
            let step = self.cfg.drift[self.drift_idx];
            if step.at > self.clock {
                break;
            }
            self.drift_cost = step.cost_factor;
            self.drift_sel = step.selectivity_factor;
            self.drift_idx += 1;
        }
    }

    /// The selectivity actually in force for a nominal `s` under the
    /// current drift factors.
    #[inline]
    fn drifted_selectivity(&self, s: f64) -> f64 {
        if self.drift_sel == 1.0 {
            s
        } else {
            (s * self.drift_sel).min(1.0)
        }
    }

    /// Take a governor decision at every cadence boundary the clock has
    /// reached: escalate one ladder step when either signal (pending depth
    /// or window overload share) crosses its upper threshold, de-escalate
    /// when *both* sit at or below their lower thresholds, and in either
    /// direction only after `min_dwell` has elapsed since the last
    /// transition. The governor state is taken out of `self` for the
    /// duration because transitions re-borrow the simulator.
    fn govern(&mut self) {
        let Some(mut g) = self.governor.take() else {
            return;
        };
        while self.clock >= g.next_decision {
            let at = g.next_decision;
            g.next_decision = at + g.cfg.cadence;
            let pending = self.queues.pending();
            let share = g.window_overload.ratio(g.cfg.cadence).min(1.0);
            // A window that accumulated for less than one cadence — the
            // trailing boundaries of a catch-up batch, or the first
            // boundary after a transition when min_dwell is shorter than
            // the cadence — understates the overload share. Escalation may
            // still act on it (a high share on a short window is a real
            // signal, and pending depth is unaffected); de-escalation and
            // switch-streak accounting must not mistake it for calm.
            let window_complete = self.clock.saturating_since(g.window_start) >= g.cfg.cadence;
            g.window_overload = Nanos::ZERO;
            g.window_start = self.clock;
            let dwell_ok = match g.last_transition {
                None => true,
                Some(last) => at.saturating_since(last) >= g.cfg.min_dwell,
            };
            if dwell_ok {
                let want_up = g.level < ladder_level(AdmissionMode::QosShed)
                    && ((g.cfg.escalate_pending > 0 && pending >= g.cfg.escalate_pending)
                        || share >= g.cfg.escalate_share);
                let want_down = g.level > g.floor
                    && window_complete
                    && pending <= g.cfg.deescalate_pending
                    && share <= g.cfg.deescalate_share;
                if want_up || want_down {
                    let next_level = if want_up { g.level + 1 } else { g.level - 1 };
                    let from = LADDER[g.level as usize];
                    let to = LADDER[next_level as usize];
                    g.level = next_level;
                    g.last_transition = Some(at);
                    g.transitions += 1;
                    self.admission_mode = to;
                    if S::ENABLED {
                        // Stamped with the clock, not the (possibly
                        // caught-up past) cadence boundary, so the trace
                        // stays monotone.
                        self.trace(TraceEvent::GovernorTransition {
                            at: self.clock,
                            from: mode_name(from),
                            to: mode_name(to),
                            pending: pending as u64,
                            share,
                        });
                    }
                }
            }
            if g.cfg.switch_policy {
                self.meta_schedule(&mut g, at, share, window_complete);
            }
        }
        self.governor = Some(g);
    }

    /// The meta-scheduler rung of the governor: swap the running policy for
    /// the configured overload policy after `switch_sustain` consecutive
    /// complete windows at or above `switch_share`, and back after as many
    /// at or below `return_share`. The band between the thresholds resets
    /// both streaks, and `min_dwell` applies between switches, so a share
    /// oscillating around either threshold cannot thrash the policy.
    fn meta_schedule(
        &mut self,
        g: &mut GovernorState,
        at: Nanos,
        share: f64,
        window_complete: bool,
    ) {
        if window_complete {
            if share >= g.cfg.switch_share {
                g.high_streak += 1;
                g.low_streak = 0;
            } else if share <= g.cfg.return_share {
                g.low_streak += 1;
                g.high_streak = 0;
            } else {
                g.high_streak = 0;
                g.low_streak = 0;
            }
        }
        let dwell_ok = match g.last_switch {
            None => true,
            Some(last) => at.saturating_since(last) >= g.cfg.min_dwell,
        };
        if !dwell_ok {
            return;
        }
        let engaged = g.standby.is_some();
        if !engaged && g.high_streak >= g.cfg.switch_sustain {
            // Don't switch to what is already running (e.g. the base
            // policy IS the configured overload policy).
            if self.policy.name() == g.cfg.overload_policy.name() {
                g.high_streak = 0;
                return;
            }
            let mut next: Box<dyn Policy> = g.cfg.overload_policy.build();
            self.resync_policy(next.as_mut());
            let from = self.policy.name();
            g.standby = Some(std::mem::replace(&mut self.policy, next));
            self.record_switch(g, at, from, share);
        } else if engaged && g.low_streak >= g.cfg.switch_sustain {
            // `engaged` was computed from `standby.is_some()`; a missing
            // standby here means the invariant broke — bail out rather
            // than panic, leaving the current policy engaged.
            let Some(mut base) = g.standby.take() else {
                return;
            };
            self.resync_policy(base.as_mut());
            let from = self.policy.name();
            self.policy = base;
            self.record_switch(g, at, from, share);
        }
    }

    /// Bookkeeping and tracing common to both switch directions.
    fn record_switch(&mut self, g: &mut GovernorState, at: Nanos, from: &'static str, share: f64) {
        g.last_switch = Some(at);
        g.switches += 1;
        g.high_streak = 0;
        g.low_streak = 0;
        if S::ENABLED {
            let to = self.policy.name();
            self.trace(TraceEvent::PolicySwitch {
                at: self.clock,
                from,
                to,
                share,
            });
        }
    }

    /// Bring a policy that has not been observing the run up to date:
    /// register the statics as currently published (re-estimates when
    /// adaptation is on, plan statics otherwise), then replay every queued
    /// tuple in global arrival order. Quarantined tuples re-enter through
    /// admission on release, so only live queue contents need replaying.
    fn resync_policy(&self, policy: &mut dyn Policy) {
        let statics = match self.adapt.as_ref() {
            Some(a) => a.current.clone(),
            None => self.model.unit_statics(),
        };
        policy.on_register(&statics);
        let mut backlog: Vec<(Nanos, u32, TupleId)> = Vec::new();
        for unit in 0..self.model.unit_count() as u32 {
            for t in self.queues.tuples(unit) {
                backlog.push((t.arrival, unit, t.id));
            }
        }
        // Stable by arrival: per-unit FIFO order is preserved for ties,
        // and the replay order is a pure function of queue contents.
        backlog.sort_by_key(|&(arrival, unit, _)| (arrival, unit));
        for (arrival, unit, id) in backlog {
            policy.on_enqueue(unit, id, arrival, self.clock);
        }
    }

    /// Publish re-estimated statics at every adaptation cadence boundary
    /// the clock has reached, and refreeze the policy's priority domain
    /// when the published coordinates have drifted outside the span frozen
    /// at registration (scaled by the configured slack). The estimator
    /// state is taken out of `self` for the duration because publishing
    /// re-borrows the simulator.
    fn adapt_flush(&mut self) {
        let Some(mut a) = self.adapt.take() else {
            return;
        };
        let mut due = false;
        while self.clock >= a.next_flush {
            a.next_flush += a.cfg.cadence;
            due = true;
        }
        if !due {
            self.adapt = Some(a);
            return;
        }
        let mut drifted = false;
        for u in 0..a.current.len() {
            if a.fresh[u] < a.cfg.min_observations {
                // Sparse units keep accumulating across boundaries until
                // they have a publishable window.
                continue;
            }
            a.fresh[u] = 0;
            if a.cfg.mode == AdaptMode::Ewma {
                // One EWMA step per cadence window, fed the window's mean:
                // batching kills the per-execution variance before it can
                // reach the priority domain.
                if let (Some(c), Some(s)) = (a.windowed[u].cost(), a.windowed[u].selectivity()) {
                    a.ewma[u].observe(c, s);
                }
            }
            let estimate = a.estimate_of(u);
            a.windowed[u].reset();
            if !a.cfg.publish || estimate == a.current[u] {
                continue;
            }
            a.current[u] = estimate;
            a.statics_updates += 1;
            self.shed_priority[u] = estimate.hnr_priority();
            self.policy.on_statics_update(u as u32, &estimate);
            if a.phi_hi > 0.0 {
                let phi = estimate.sanitized_phi();
                if phi > a.phi_hi * a.cfg.refreeze_factor
                    || (phi > 0.0 && phi < a.phi_lo / a.cfg.refreeze_factor)
                {
                    drifted = true;
                }
            }
        }
        if drifted {
            if self.policy.on_domain_refreeze() {
                a.refreezes += 1;
            }
            // Re-anchor even when the policy declined (static policies
            // have no frozen domain): the span check should not re-fire
            // every flush for the same drift.
            a.reanchor_phi_span();
        }
        self.adapt = Some(a);
    }

    /// Re-admit every quarantined tuple whose cooldown has elapsed. The
    /// returning tuple goes through normal admission, so a still-overloaded
    /// engine may shed it instead of queueing it.
    fn release_parked_due(&mut self) {
        while let Some(Reverse(p)) = self.parked.peek() {
            if p.release > self.clock {
                break;
            }
            let Some(Reverse(p)) = self.parked.pop() else {
                break;
            };
            self.admit(p.unit, p.tuple);
        }
    }

    fn peek_next_arrival(&self) -> Option<Nanos> {
        self.upcoming.peek().map(|Reverse((t, _))| *t)
    }

    fn deliver_due_arrivals(&mut self) {
        while self.arrivals_injected < self.cfg.max_arrivals {
            let Some(&Reverse((t, stream))) = self.upcoming.peek() else {
                break;
            };
            if t > self.clock {
                break;
            }
            self.upcoming.pop();
            if let Some(next) = self.sources[stream].next_arrival() {
                self.upcoming.push(Reverse((next, stream)));
            }
            self.inject(StreamId::new(stream), t);
        }
    }

    fn inject(&mut self, stream: StreamId, at: Nanos) {
        // The arrival's id is its global arrival ordinal: identical across
        // policies, so attribute keys and selectivity coins are a pure
        // function of the workload, never of scheduling decisions.
        let id = TupleId::new(self.arrivals_injected);
        self.arrivals_injected += 1;
        // The §8 extra attribute: uniform in [1,100], shared by every copy.
        let key = exec::arrival_key(self.cfg.seed, id);
        // Routes are read through an index to satisfy the borrow checker;
        // the route table is immutable during simulation.
        let si = stream.index();
        for r in 0..self.model.routes[si].len() {
            let route = self.model.routes[si][r];
            let tuple = SimTuple {
                id,
                arrival: at,
                ts: at,
                key,
                ideal_depart: at + route.alone,
                lineage: id,
            };
            self.admit(route.unit, tuple);
        }
    }

    /// Admission control: every tuple entering a unit queue — source
    /// arrivals, shared-group deferred copies, operator-level handoffs —
    /// goes through here. Applies the configured [`AdmissionMode`], counts
    /// shed tuples, and notifies the policy of enqueues and sheds.
    fn admit(&mut self, unit: u32, tuple: SimTuple) {
        match self.admission_mode {
            AdmissionMode::Unbounded => {}
            AdmissionMode::DropTail => {
                if self.queues.len(unit) >= self.admission_capacity {
                    self.shed += 1;
                    if S::ENABLED {
                        self.trace(TraceEvent::Shed {
                            at: self.clock,
                            unit,
                            tuple: tuple.id.raw(),
                            lineage: tuple.lineage.raw(),
                            arrival: tuple.arrival,
                        });
                    }
                    return;
                }
            }
            AdmissionMode::QosShed => {
                if self.queues.len(unit) >= self.admission_capacity
                    && self.queues.pending() >= self.admission_watermark
                    && !self.shed_lowest_priority(unit)
                {
                    // The arriving unit is itself the least valuable:
                    // reject the arrival rather than displace anyone.
                    self.shed += 1;
                    if S::ENABLED {
                        self.trace(TraceEvent::Shed {
                            at: self.clock,
                            unit,
                            tuple: tuple.id.raw(),
                            lineage: tuple.lineage.raw(),
                            arrival: tuple.arrival,
                        });
                    }
                    return;
                }
            }
        }
        self.queues.push(unit, tuple);
        self.peak_pending = self.peak_pending.max(self.queues.pending());
        self.policy
            .on_enqueue(unit, tuple.id, tuple.arrival, self.clock);
    }

    /// QoS-aware victim selection: shed the tail tuple of the pending unit
    /// with the lowest static HNR priority `S/(C̄·T)` (ties broken by lower
    /// unit id), provided it is valued strictly below — or tied with and
    /// id-before — the arriving unit. Returns false when the arriving unit
    /// itself is the least valuable, i.e. the arrival should be rejected.
    /// O(non-empty units) per overloaded admission; the scan only runs past
    /// the watermark, so the uncongested path never pays it.
    fn shed_lowest_priority(&mut self, arriving: u32) -> bool {
        let Some(victim) = exec::shed_victim(self.queues.nonempty(), &self.shed_priority, arriving)
        else {
            return false;
        };
        match self.queues.shed_tail(victim) {
            Some(t) => {
                self.shed += 1;
                self.policy.on_shed(victim, t.id);
                if S::ENABLED {
                    self.trace(TraceEvent::Shed {
                        at: self.clock,
                        unit: victim,
                        tuple: t.id.raw(),
                        lineage: t.lineage.raw(),
                        arrival: t.arrival,
                    });
                }
                true
            }
            None => {
                debug_assert!(false, "victim came from the non-empty index");
                false
            }
        }
    }

    fn next_composite_id(&mut self) -> TupleId {
        let id = TupleId::new(self.composite_counter | (1 << 63));
        self.composite_counter += 1;
        id
    }

    fn execute_unit(&mut self, unit: u32) -> Result<(), EngineError> {
        // `pop` validates the unit id (dense, same space as `model.units`),
        // so the `kind` lookup below cannot be out of range.
        let tuple = self.queues.pop(unit)?;
        let kind = self.model.units[unit as usize].kind;
        self.current_unit = unit;
        // Deadline enforcement: a tuple already past its query's response
        // budget when the scheduler reaches it is expired, not run — the
        // answer would be too stale to matter. Shared units carry tuples for
        // several queries at once and are exempt (per-member deadlines apply
        // downstream at the remainder units).
        if self.any_deadline {
            let query = match kind {
                UnitKind::Leaf { query, .. } => Some(query),
                UnitKind::Remainder { group, member } => {
                    Some(self.model.groups[group].members[member])
                }
                UnitKind::Operator { query, .. } => Some(query),
                UnitKind::Shared { .. } => None,
            };
            if let Some(q) = query {
                if let Some(d) = self.deadlines[q] {
                    let due = tuple.arrival + d;
                    if self.clock > due {
                        self.expired += 1;
                        if S::ENABLED {
                            self.trace(TraceEvent::Expire {
                                at: self.clock,
                                unit,
                                query: q as u32,
                                tuple: tuple.id.raw(),
                                arrival: tuple.arrival,
                                late_by: self.clock - due,
                            });
                        }
                        return Ok(());
                    }
                }
            }
        }
        // Transient operator failure: the entry operator's cost is charged
        // (the work happened), its output is suppressed, and the tuple is
        // quarantined for a cooldown before being retried — or abandoned
        // once retries run out. The draw is a pure function of
        // (tuple, unit, attempt, fault seed): identical across policies.
        if self.cfg.faults.op_failure_prob > 0.0 {
            let key = (unit, tuple.id.raw());
            let attempt = self.fail_attempts.get(&key).copied().unwrap_or(0);
            let roll = det::mix3(
                tuple.id.raw(),
                det::mix2(u64::from(unit), u64::from(attempt)),
                self.cfg.faults.seed ^ 0x00FA_11ED,
            );
            if det::coin(roll, self.cfg.faults.op_failure_prob) {
                let (cost, salt) = self.entry_charge(kind);
                let at = self.clock;
                let busy0 = self.busy_time;
                self.charge_op(cost, tuple.id, salt);
                self.op_failures += 1;
                let retrying = attempt < self.cfg.faults.op_failure_retries;
                if S::ENABLED {
                    self.trace(TraceEvent::OpFailure {
                        at,
                        unit,
                        tuple: tuple.id.raw(),
                        cost: self.busy_time.saturating_since(busy0),
                        attempt,
                        retrying,
                    });
                }
                if retrying {
                    self.fail_attempts.insert(key, attempt + 1);
                    let cooldown = self.cfg.faults.op_failure_cooldown;
                    self.quarantine_time += cooldown;
                    self.parked.push(Reverse(Parked {
                        release: self.clock + cooldown,
                        seq: self.park_seq,
                        unit,
                        tuple,
                    }));
                    self.park_seq += 1;
                } else {
                    self.fail_attempts.remove(&key);
                    self.dropped += 1;
                }
                return Ok(());
            }
            if attempt > 0 {
                self.fail_attempts.remove(&key);
            }
        }
        let (start, busy0, emitted0) = (self.clock, self.busy_time, self.emitted);
        let (tuple_id, tuple_arrival) = (tuple.id, tuple.arrival);
        if S::ENABLED {
            // Buffer the run's Emit/Shed children so the UnitRun — whose
            // cost/output are only known afterwards — still precedes them
            // in the stream.
            debug_assert!(!self.trace_buffering && self.trace_buf.is_empty());
            self.trace_buffering = true;
        }
        match kind {
            UnitKind::Leaf { query, leaf } => {
                let entry = self.model.compiled[query].leaves[leaf.index()].entry;
                self.run_pipeline(query, entry, tuple)?;
            }
            UnitKind::Shared { group } => self.run_shared(group, tuple)?,
            UnitKind::Remainder { group, member } => {
                let query = self.model.groups[group].members[member];
                self.run_pipeline(query, (1, Port::Single), tuple)?;
            }
            UnitKind::Operator { query, op } => self.run_operator_step(query, op, tuple)?,
        }
        if self.adapt.is_some() {
            // One observation per completed unit execution: total charged
            // cost and tuples emitted for this input. Expired and failed
            // tuples return before this point — a suppressed output is not
            // evidence about selectivity.
            let cost = self.busy_time.saturating_since(busy0);
            let produced = self.emitted - emitted0;
            if let Some(a) = self.adapt.as_mut() {
                a.observe(unit, cost, produced as f64);
            }
        }
        if S::ENABLED {
            self.trace_buffering = false;
            self.sink.event(&TraceEvent::UnitRun {
                at: start,
                unit,
                tuple: tuple_id.raw(),
                arrival: tuple_arrival,
                cost: self.busy_time.saturating_since(busy0),
                tuples: self.emitted - emitted0,
            });
            let buf = std::mem::take(&mut self.trace_buf);
            for e in &buf {
                self.sink.event(e);
            }
            self.trace_buf = buf;
            self.trace_buf.clear();
        }
        Ok(())
    }

    /// Nominal cost and charge salt of the unit's *entry* operator — what a
    /// transient failure of the first processing step costs. Uses the same
    /// salt as the real execution so the persistent miscalibration factor
    /// matches.
    fn entry_charge(&self, kind: UnitKind) -> (Nanos, u64) {
        let op_cost = |query: usize, oi: usize| {
            let salt = det::mix2(query as u64, oi as u64);
            match self.model.compiled[query].ops[oi].kind {
                CompiledOpKind::Unary(spec) => (spec.cost, salt),
                CompiledOpKind::Join(spec) => (spec.cost, salt),
            }
        };
        match kind {
            UnitKind::Leaf { query, leaf } => {
                let (oi, _) = self.model.compiled[query].leaves[leaf.index()].entry;
                op_cost(query, oi)
            }
            UnitKind::Shared { group } => {
                (self.model.groups[group].shared_cost, 0xD00D ^ group as u64)
            }
            UnitKind::Remainder { group, member } => {
                op_cost(self.model.groups[group].members[member], 1)
            }
            UnitKind::Operator { query, op } => op_cost(query, op),
        }
    }

    /// Pipelined execution from `entry` to the root (query-level units).
    fn run_pipeline(
        &mut self,
        query: usize,
        entry: (usize, Port),
        tuple: SimTuple,
    ) -> Result<(), EngineError> {
        let mut cursor = Some(entry);
        while let Some((oi, port)) = cursor {
            let op = self.model.compiled[query].ops[oi];
            let downstream = op.downstream;
            match op.kind {
                CompiledOpKind::Unary(spec) => {
                    self.charge_op(spec.cost, tuple.id, det::mix2(query as u64, oi as u64));
                    if !self.unary_passes(query, oi, &spec, &tuple) {
                        self.dropped += 1;
                        return Ok(());
                    }
                    cursor = downstream;
                }
                CompiledOpKind::Join(spec) => {
                    self.charge_op(spec.cost, tuple.id, det::mix2(query as u64, oi as u64));
                    let side = match port {
                        Port::Left => Side::Left,
                        Port::Right => Side::Right,
                        Port::Single => return Err(EngineError::UnaryPortAtJoin { query, op: oi }),
                    };
                    // Reuse the probe scratch buffer across tuples; it is
                    // taken out of `self` for the duration of the partner
                    // loop because `run_pipeline` re-borrows the simulator.
                    let mut matches = std::mem::take(&mut self.probe_buf);
                    let Some((join_idx, shj)) = self.joins[query].as_mut() else {
                        return Err(EngineError::MissingJoinState { query });
                    };
                    debug_assert_eq!(*join_idx, oi);
                    shj.insert_probe_into(side, &tuple, &mut matches);
                    let mut produced = false;
                    let sel = self.drifted_selectivity(spec.selectivity);
                    for &partner in &matches {
                        if !exec::pair_passes(self.cfg.seed, query, oi, sel, &tuple, &partner) {
                            continue;
                        }
                        produced = true;
                        let id = self.next_composite_id();
                        let composite = SimTuple::composite(id, &tuple, &partner);
                        match downstream {
                            Some(next) => self.run_pipeline(query, next, composite)?,
                            None => self.emit(query, composite),
                        }
                    }
                    self.probe_buf = matches;
                    if !produced {
                        self.dropped += 1;
                    }
                    return Ok(());
                }
            }
        }
        self.emit(query, tuple);
        Ok(())
    }

    /// §7 shared-operator execution: the shared operator once, then the PDT
    /// members inline and the deferred members' queues.
    fn run_shared(&mut self, group: usize, tuple: SimTuple) -> Result<(), EngineError> {
        // The group model is read through indices rather than cloned: its
        // member lists are heap-backed, and this runs once per shared tuple.
        let g = &self.model.groups[group];
        let shared_cost = g.shared_cost;
        let n_members = g.members.len();
        let q0 = g.members[0];
        self.charge_op(shared_cost, tuple.id, 0xD00D ^ group as u64);
        // The shared operator is physically one operator: one outcome. The
        // §9.3 groups share a *select*, whose outcome is key-driven and thus
        // identical across members by construction; for generality
        // non-key-predicate shared ops use a group-salted coin.
        let spec = match self.model.compiled[q0].ops[0].kind {
            CompiledOpKind::Unary(spec) => spec,
            CompiledOpKind::Join(_) => {
                return Err(EngineError::UnexpectedJoin { query: q0, op: 0 })
            }
        };
        let s = self.drifted_selectivity(spec.selectivity);
        let pass = if spec.kind.is_key_predicate() {
            exec::key_passes(s, &tuple)
        } else {
            det::coin(
                det::mix3(tuple.id.raw(), 0xC0DE_5A17 ^ group as u64, self.cfg.seed),
                s,
            )
        };
        if !pass {
            self.dropped += n_members as u64;
            return Ok(());
        }
        for i in 0..self.model.groups[group].inline_members.len() {
            let pos = self.model.groups[group].inline_members[i];
            let query = self.model.groups[group].members[pos];
            let mut copy = tuple;
            copy.ideal_depart = tuple.arrival + self.ideal_times[query];
            if self.model.compiled[query].ops.len() > 1 {
                self.run_pipeline(query, (1, Port::Single), copy)?;
            } else {
                self.emit(query, copy);
            }
        }
        for i in 0..self.model.groups[group].deferred.len() {
            let (pos, unit) = self.model.groups[group].deferred[i];
            let query = self.model.groups[group].members[pos];
            let mut copy = tuple;
            copy.ideal_depart = tuple.arrival + self.ideal_times[query];
            self.admit(unit, copy);
        }
        Ok(())
    }

    /// Operator-level execution: one operator, one tuple.
    fn run_operator_step(
        &mut self,
        query: usize,
        op: usize,
        tuple: SimTuple,
    ) -> Result<(), EngineError> {
        let compiled_op = self.model.compiled[query].ops[op];
        let spec = match compiled_op.kind {
            CompiledOpKind::Unary(spec) => spec,
            CompiledOpKind::Join(_) => return Err(EngineError::UnexpectedJoin { query, op }),
        };
        let downstream = compiled_op.downstream;
        self.charge_op(spec.cost, tuple.id, det::mix2(query as u64, op as u64));
        if !self.unary_passes(query, op, &spec, &tuple) {
            self.dropped += 1;
            return Ok(());
        }
        match downstream {
            Some((next, _)) => {
                let unit = self.op_units[query][next];
                self.admit(unit, tuple);
            }
            None => self.emit(query, tuple),
        }
        Ok(())
    }

    fn charge(&mut self, cost: Nanos) {
        self.advance_clock(self.clock + cost);
        self.busy_time += cost;
    }

    /// Charge an operator execution, applying (1) the configured persistent
    /// cost misestimation — the fault-injection scenario where the
    /// calibrated `C̄_x` the policies prioritize on is wrong at run time —
    /// and (2) the per-execution cost jitter. Both factors are deterministic
    /// functions of `(operator, seed)` resp. `(tuple, operator, seed)` —
    /// identical across policies, so faulted runs stay comparable.
    fn charge_op(&mut self, cost: Nanos, tuple: TupleId, salt: u64) {
        let mut cost = cost;
        let m = self.cfg.faults.cost_miscalibration;
        if m > 0.0 {
            // Persistent per-operator factor: same salt → same factor for
            // every execution of the operator, so this models a stale
            // calibration rather than noise.
            let u = det::unit_f64(det::mix3(salt, 0xFA17_C057, self.cfg.faults.seed));
            let mut factor = 1.0 + m * (2.0 * u - 1.0);
            if m >= 1.0 {
                // Magnitudes past 1 would otherwise drive the factor
                // negative; floor at 1% so "wildly miscalibrated" still
                // means a positive cost. Magnitudes below 1 keep their
                // exact historical behavior.
                factor = factor.max(0.01);
            }
            cost = cost.scale(factor).max(Nanos(1));
        }
        if self.drift_cost != 1.0 {
            cost = cost.scale(self.drift_cost).max(Nanos(1));
        }
        if self.cfg.cost_jitter > 0.0 {
            let u = det::unit_f64(det::mix3(tuple.raw(), salt, self.cfg.seed ^ 0x1177));
            let factor = 1.0 + self.cfg.cost_jitter * (2.0 * u - 1.0);
            cost = cost.scale(factor).max(Nanos(1));
        }
        self.charge(cost);
    }

    fn unary_passes(&self, query: usize, op: usize, spec: &OperatorSpec, t: &SimTuple) -> bool {
        let s = self.drifted_selectivity(spec.selectivity);
        exec::unary_passes(self.cfg.seed, query, op, spec, s, t)
    }

    fn emit(&mut self, query: usize, t: SimTuple) {
        self.emitted += 1;
        let ideal = self.ideal_times[query];
        let response = self.clock.saturating_since(t.arrival);
        // H = 1 + (D_actual − D_ideal)/T (§5.1.2); for single-stream tuples
        // D_ideal = A + T, collapsing to Definition 2's R/T. Under cost
        // jitter an execution can beat the nominal ideal; slowdown then
        // clamps at 1 (the tuple was served ideally).
        let slowdown = exec::slowdown(self.clock, t.ideal_depart, ideal);
        self.qos.record(response, slowdown);
        self.classes
            .record(self.model.tags[query], response, slowdown);
        self.histogram.record(slowdown);
        if let Some(series) = self.series.as_mut() {
            series.record(self.clock, response, slowdown);
        }
        if M::ENABLED {
            if let Some(t) = self.telemetry.as_mut() {
                t.observe_emit(query, response, slowdown);
            }
        }
        if S::ENABLED {
            let unit = self.current_unit;
            self.trace(TraceEvent::Emit {
                at: self.clock,
                unit,
                query: query as u32,
                tuple: t.id.raw(),
                lineage: t.lineage.raw(),
                arrival: t.arrival,
                slowdown,
            });
        }
    }
}
