//! Live telemetry sampling.
//!
//! The simulator is generic over a [`MetricsSink`] that receives one
//! [`TelemetrySnapshot`] per sampling cadence
//! ([`crate::SimConfig::telemetry_cadence`] of virtual time): cumulative
//! engine counters (arrivals, emissions, drops, sheds, scheduling points,
//! busy/overhead/overload nanoseconds), instantaneous gauges (pending
//! tuples, utilization, per-unit queue depth and backlog age), and windowed
//! QoS summaries (slowdown and response-time quantiles, aggregate and
//! per-query, covering the span since the previous snapshot).
//!
//! The hook mirrors [`crate::trace::TraceSink`] exactly: the default
//! [`NoTelemetry`] has `ENABLED = false`, so every sampling site — and the
//! registry itself, which is only built for enabled sinks — is compiled out
//! of the unmonitored simulator. A monitored run makes identical scheduling
//! decisions and produces an identical [`crate::SimReport`] (telemetry
//! observes, never steers), and the final snapshot's counters reconcile
//! exactly with the report.
//!
//! Sampling is driven by virtual time, so a snapshot stream is a pure
//! function of (workload, policy, config) — byte-identical across
//! processes, hosts, and `--jobs` counts. Snapshots are stamped at the
//! cadence boundary they cover; the engine reads its state at the first
//! scheduling point at or after that boundary (state between events is
//! constant, so nothing is missed). A final snapshot stamped at the run's
//! end time always follows.

use std::io::{self, Write};

use hcq_common::Nanos;
use hcq_metrics::{InstrumentId, TelemetryRegistry, TelemetrySnapshot};

use crate::config::SimConfig;

/// Receiver of [`TelemetrySnapshot`]s.
///
/// The simulator is monomorphized per sink; `ENABLED = false` (as on
/// [`NoTelemetry`]) turns every sampling site into dead code, so the
/// unmonitored simulator binary is unchanged by this layer.
pub trait MetricsSink {
    /// Whether this sink observes snapshots at all. Sinks that do must
    /// leave the default `true`.
    const ENABLED: bool = true;

    /// Observe one snapshot. Snapshots arrive in virtual-time order; every
    /// timestamp except the final one is a multiple of the cadence.
    fn sample(&mut self, snapshot: &TelemetrySnapshot);
}

/// The default sink: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTelemetry;

impl MetricsSink for NoTelemetry {
    const ENABLED: bool = false;

    fn sample(&mut self, _snapshot: &TelemetrySnapshot) {}
}

/// Collects snapshots in memory — the test-suite and exhibit sink.
#[derive(Debug, Default)]
pub struct VecTelemetry {
    /// Every snapshot, in sampling order.
    pub samples: Vec<TelemetrySnapshot>,
}

impl VecTelemetry {
    /// An empty collector.
    pub fn new() -> Self {
        VecTelemetry::default()
    }
}

impl MetricsSink for VecTelemetry {
    fn sample(&mut self, snapshot: &TelemetrySnapshot) {
        self.samples.push(snapshot.clone());
    }
}

/// Streams snapshots as JSON Lines — one self-describing
/// `{"type":"telemetry",…}` object per line, interleavable with the
/// scheduling trace's JSONL. Byte-deterministic, like the trace.
#[derive(Debug)]
pub struct JsonlTelemetry<W: Write> {
    writer: W,
    /// First write error, if any (subsequent snapshots are dropped).
    error: Option<io::Error>,
}

impl<W: Write> JsonlTelemetry<W> {
    /// Wrap a writer. Consider a `BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        JsonlTelemetry {
            writer,
            error: None,
        }
    }

    /// Flush and return the writer, surfacing any deferred write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> MetricsSink for JsonlTelemetry<W> {
    fn sample(&mut self, snapshot: &TelemetrySnapshot) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{}", snapshot.to_jsonl()) {
            self.error = Some(e);
        }
    }
}

/// The engine's instrument set: registered once per monitored run, updated
/// from live simulator state at each sample. Only built when the sink's
/// `ENABLED` is true, so unmonitored runs never allocate it.
pub(crate) struct EngineTelemetry {
    pub registry: TelemetryRegistry,
    pub cadence: Nanos,
    /// Next cadence boundary to stamp a snapshot at.
    pub next_sample: Nanos,
    pub arrivals: InstrumentId,
    pub emitted: InstrumentId,
    pub dropped: InstrumentId,
    pub shed: InstrumentId,
    pub sched_points: InstrumentId,
    pub busy_ns: InstrumentId,
    pub overhead_ns: InstrumentId,
    pub overload_ns: InstrumentId,
    pub expired: InstrumentId,
    pub op_failures: InstrumentId,
    pub quarantine_ns: InstrumentId,
    pub governor_transitions: InstrumentId,
    pub policy_switches: InstrumentId,
    pub statics_updates: InstrumentId,
    pub domain_refreezes: InstrumentId,
    pub pending: InstrumentId,
    pub peak_pending: InstrumentId,
    pub utilization: InstrumentId,
    pub governor_mode: InstrumentId,
    /// `hcq_queue_depth{unit=…}`, indexed by unit id.
    pub queue_depth: Vec<InstrumentId>,
    /// `hcq_backlog_age_seconds{unit=…}`, indexed by unit id.
    pub backlog_age: Vec<InstrumentId>,
    slowdown: InstrumentId,
    response_ns: InstrumentId,
    /// `hcq_query_slowdown{query=…}`, indexed by query.
    query_slowdown: Vec<InstrumentId>,
    /// `hcq_query_response_ns{query=…}`, indexed by query.
    query_response: Vec<InstrumentId>,
}

impl EngineTelemetry {
    /// Register the full instrument set for `n_units` schedulable units and
    /// `n_queries` queries. Families are registered contiguously (the
    /// exporters' grouping convention).
    pub fn new(n_units: usize, n_queries: usize, cfg: &SimConfig) -> Self {
        // A zero cadence would loop forever at the first sample point.
        let cadence = cfg.telemetry_cadence.max(Nanos(1));
        let mut reg = TelemetryRegistry::new();
        let arrivals = reg.counter("hcq_arrivals_total", "Source tuples injected", vec![]);
        let emitted = reg.counter("hcq_emitted_total", "Tuples emitted at query roots", vec![]);
        let dropped = reg.counter(
            "hcq_dropped_total",
            "Tuples dropped by operator predicates",
            vec![],
        );
        let shed = reg.counter(
            "hcq_shed_total",
            "Tuples shed by overload management",
            vec![],
        );
        let sched_points = reg.counter("hcq_sched_points_total", "Scheduling decisions", vec![]);
        let busy_ns = reg.counter(
            "hcq_busy_time_ns_total",
            "Virtual nanoseconds spent executing operators",
            vec![],
        );
        let overhead_ns = reg.counter(
            "hcq_sched_overhead_ns_total",
            "Virtual nanoseconds charged as scheduling overhead",
            vec![],
        );
        let overload_ns = reg.counter(
            "hcq_overload_time_ns_total",
            "Virtual nanoseconds spent at or above the overload watermark",
            vec![],
        );
        let expired = reg.counter(
            "hcq_expired_total",
            "Tuples expired at dequeue past their query deadline",
            vec![],
        );
        let op_failures = reg.counter(
            "hcq_op_failures_total",
            "Transient operator failures (run charged, output suppressed)",
            vec![],
        );
        let quarantine_ns = reg.counter(
            "hcq_quarantine_time_ns_total",
            "Virtual nanoseconds of tuple quarantine after operator failures",
            vec![],
        );
        let governor_transitions = reg.counter(
            "hcq_governor_transitions_total",
            "Admission-mode transitions taken by the overload governor",
            vec![],
        );
        let policy_switches = reg.counter(
            "hcq_policy_switches_total",
            "Policy switches taken by the governor's meta-scheduler",
            vec![],
        );
        let statics_updates = reg.counter(
            "hcq_statics_updates_total",
            "Re-estimated statics publications forwarded to the policy",
            vec![],
        );
        let domain_refreezes = reg.counter(
            "hcq_domain_refreezes_total",
            "Priority-domain refreezes acknowledged by the policy",
            vec![],
        );
        let pending = reg.gauge(
            "hcq_pending_tuples",
            "Tuples pending across all queues",
            vec![],
        );
        let peak_pending = reg.gauge(
            "hcq_peak_pending_tuples",
            "Highest pending-tuple count seen so far",
            vec![],
        );
        let utilization = reg.gauge(
            "hcq_utilization",
            "Fraction of virtual time spent busy or on charged overhead",
            vec![],
        );
        let governor_mode = reg.gauge(
            "hcq_governor_mode",
            "Current admission mode (0 Unbounded, 1 DropTail, 2 QosShed)",
            vec![],
        );
        let fault = reg.gauge(
            "hcq_fault_cost_miscalibration",
            "Configured cost-miscalibration magnitude (0 = none)",
            vec![],
        );
        let queue_depth = (0..n_units)
            .map(|u| {
                reg.gauge(
                    "hcq_queue_depth",
                    "Tuples queued at the unit",
                    vec![("unit", u.to_string())],
                )
            })
            .collect();
        let backlog_age = (0..n_units)
            .map(|u| {
                reg.gauge(
                    "hcq_backlog_age_seconds",
                    "Virtual age of the unit's oldest queued tuple",
                    vec![("unit", u.to_string())],
                )
            })
            .collect();
        let slowdown = reg.summary(
            "hcq_slowdown",
            "Slowdown of emissions in the window",
            vec![],
        );
        let response_ns = reg.summary(
            "hcq_response_ns",
            "Response time (ns) of emissions in the window",
            vec![],
        );
        let query_slowdown = (0..n_queries)
            .map(|q| {
                reg.summary(
                    "hcq_query_slowdown",
                    "Per-query slowdown of emissions in the window",
                    vec![("query", q.to_string())],
                )
            })
            .collect();
        let query_response = (0..n_queries)
            .map(|q| {
                reg.summary(
                    "hcq_query_response_ns",
                    "Per-query response time (ns) of emissions in the window",
                    vec![("query", q.to_string())],
                )
            })
            .collect();
        reg.set_gauge(fault, cfg.faults.cost_miscalibration);
        EngineTelemetry {
            registry: reg,
            cadence,
            next_sample: cadence,
            arrivals,
            emitted,
            dropped,
            shed,
            sched_points,
            busy_ns,
            overhead_ns,
            overload_ns,
            expired,
            op_failures,
            quarantine_ns,
            governor_transitions,
            policy_switches,
            statics_updates,
            domain_refreezes,
            pending,
            peak_pending,
            utilization,
            governor_mode,
            queue_depth,
            backlog_age,
            slowdown,
            response_ns,
            query_slowdown,
            query_response,
        }
    }

    /// Record one emission into the aggregate and per-query summaries.
    pub fn observe_emit(&mut self, query: usize, response: Nanos, slowdown: f64) {
        self.registry.observe(self.slowdown, slowdown);
        self.registry.observe(self.query_slowdown[query], slowdown);
        let response_ns = response.as_nanos() as f64;
        self.registry.observe(self.response_ns, response_ns);
        self.registry
            .observe(self.query_response[query], response_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: u64, seq: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            at: Nanos(at),
            seq,
            metrics: Vec::new(),
        }
    }

    #[test]
    fn no_telemetry_is_disabled() {
        const { assert!(!NoTelemetry::ENABLED) };
        const { assert!(VecTelemetry::ENABLED) };
        const { assert!(<JsonlTelemetry<Vec<u8>> as MetricsSink>::ENABLED) };
    }

    #[test]
    fn vec_telemetry_collects_in_order() {
        let mut sink = VecTelemetry::new();
        sink.sample(&snap(10, 1));
        sink.sample(&snap(20, 2));
        assert_eq!(sink.samples.len(), 2);
        assert_eq!(sink.samples[0].at, Nanos(10));
        assert_eq!(sink.samples[1].seq, 2);
    }

    #[test]
    fn jsonl_telemetry_writes_one_line_per_snapshot() {
        let mut sink = JsonlTelemetry::new(Vec::new());
        sink.sample(&snap(5, 1));
        let bytes = sink.finish().unwrap();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "{\"type\":\"telemetry\",\"at\":5,\"seq\":1,\"metrics\":[]}\n"
        );
    }

    #[test]
    fn jsonl_write_error_is_deferred_to_finish() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlTelemetry::new(Failing);
        sink.sample(&snap(1, 1));
        sink.sample(&snap(2, 2)); // dropped silently after the first error
        assert!(sink.finish().is_err());
    }

    #[test]
    fn engine_telemetry_registers_contiguous_families() {
        let telem = EngineTelemetry::new(3, 2, &SimConfig::new(10));
        let snap = {
            let mut t = telem;
            t.registry.snapshot(Nanos(1))
        };
        // Families must be contiguous for the Prometheus renderer.
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name).collect();
        let mut closed: Vec<&str> = Vec::new();
        let mut current = "";
        for n in names {
            if n != current {
                assert!(!closed.contains(&n), "family {n} interleaves");
                if !current.is_empty() {
                    closed.push(current);
                }
                current = n;
            }
        }
        assert_eq!(
            snap.get("hcq_queue_depth", &[("unit", "2")]),
            Some(&hcq_metrics::MetricValue::Gauge(0.0))
        );
        assert!(snap.get("hcq_query_slowdown", &[("query", "1")]).is_some());
    }
}
