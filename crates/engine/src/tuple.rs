//! The simulated tuple.

use hcq_common::{Nanos, TupleId};
use hcq_join::JoinItem;

/// A tuple flowing through the simulator.
///
/// Tuples carry no payload beyond what scheduling and metrics consume: the
/// §8 attribute (`key`, uniform in \[1,100\], shared by every copy of one
/// physical arrival so select outcomes correlate across queries exactly as
/// in the paper's testbed) and the bookkeeping for the slowdown metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimTuple {
    /// Unique per simulation run; composite tuples mint fresh ids.
    pub id: TupleId,
    /// System arrival time: the stream arrival for base tuples, the max over
    /// constituents for composites (Definition 5).
    pub arrival: Nanos,
    /// Timestamp used by window predicates (equals `arrival` here — the DSMS
    /// timestamps tuples on entry, §5).
    pub ts: Nanos,
    /// The §8 attribute in \[1, 100\] driving select predicates.
    pub key: u64,
    /// Ideal departure time `D_ideal` (§5.1.2): the max over constituents of
    /// `arrival + alone-path cost`. Equals `arrival + T_k` for single-stream
    /// tuples.
    pub ideal_depart: Nanos,
    /// Stable lineage id: the arrival id of the base tuple this one's
    /// response time is measured against. Base tuples carry their own id;
    /// composites inherit the lineage of the later-arriving constituent —
    /// the same constituent whose arrival defines the composite's Definition
    /// 5 arrival, so `at − arrival` on an `Emit` is the response time of
    /// exactly this lineage. Lets offline analysis chain a root emission
    /// back to the physical arrival that paid its queue wait.
    pub lineage: TupleId,
}

impl SimTuple {
    /// Combine two join inputs into a composite tuple (Definition 5 arrival;
    /// ideal departures take the max — each constituent's own path work
    /// bounds the composite from below).
    pub fn composite(id: TupleId, left: &SimTuple, right: &SimTuple) -> SimTuple {
        SimTuple {
            id,
            arrival: left.arrival.max(right.arrival),
            ts: left.ts.max(right.ts),
            // The §8 attribute of a composite: keep the probing side's
            // attribute distributionally uniform by mixing both.
            key: 1 + (hcq_common::det::mix2(left.key, right.key) % 100),
            ideal_depart: left.ideal_depart.max(right.ideal_depart),
            lineage: if right.arrival > left.arrival {
                right.lineage
            } else {
                left.lineage
            },
        }
    }
}

impl JoinItem for SimTuple {
    /// All tuples share one join bucket: the window join's matching is
    /// "every tuple in the window is a candidate", thinned by the join
    /// predicate's selectivity coin — exactly the §5 cost/selectivity model
    /// (`S_other · V/τ_other` candidates, each passing with `s_J`).
    fn key(&self) -> u64 {
        0
    }

    fn timestamp(&self) -> Nanos {
        self.ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, arrival_ms: u64, ideal_ms: u64, key: u64) -> SimTuple {
        SimTuple {
            id: TupleId::new(id),
            arrival: Nanos::from_millis(arrival_ms),
            ts: Nanos::from_millis(arrival_ms),
            key,
            ideal_depart: Nanos::from_millis(ideal_ms),
            lineage: TupleId::new(id),
        }
    }

    #[test]
    fn composite_takes_maxes() {
        let a = t(1, 10, 30, 5);
        let b = t(2, 20, 25, 80);
        let c = SimTuple::composite(TupleId::new(3), &a, &b);
        assert_eq!(c.arrival, Nanos::from_millis(20));
        assert_eq!(c.ts, Nanos::from_millis(20));
        assert_eq!(c.ideal_depart, Nanos::from_millis(30));
        assert!((1..=100).contains(&c.key));
        // Lineage follows the later-arriving constituent (b at 20ms).
        assert_eq!(c.lineage, TupleId::new(2));
    }

    #[test]
    fn composite_lineage_ties_break_left() {
        let a = t(1, 20, 30, 5);
        let b = t(2, 20, 25, 80);
        let c = SimTuple::composite(TupleId::new(3), &a, &b);
        assert_eq!(c.lineage, TupleId::new(1));
    }

    #[test]
    fn join_item_uses_shared_bucket() {
        let a = t(1, 10, 30, 5);
        let b = t(2, 99, 30, 77);
        assert_eq!(JoinItem::key(&a), JoinItem::key(&b));
        assert_eq!(a.timestamp(), Nanos::from_millis(10));
    }

    #[test]
    fn composite_key_is_deterministic() {
        let a = t(1, 10, 30, 5);
        let b = t(2, 20, 25, 80);
        let c1 = SimTuple::composite(TupleId::new(3), &a, &b);
        let c2 = SimTuple::composite(TupleId::new(4), &a, &b);
        assert_eq!(c1.key, c2.key);
    }
}
