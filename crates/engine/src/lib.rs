//! The DSMS simulator.
//!
//! This crate rebuilds the evaluation substrate of §8: a deterministic
//! discrete-event simulator of a data-stream management system hosting many
//! registered continuous queries. Virtual time is integer nanoseconds; all
//! randomness (arrivals, attribute values, selectivity outcomes) is seeded,
//! and selectivity outcomes are a pure function of `(tuple, operator)` so
//! every scheduling policy faces the identical workload realization.
//!
//! The moving parts:
//!
//! * [`SimModel`] compiles a [`hcq_plan::GlobalPlan`] into schedulable
//!   *units* — per-leaf operator segments at query-level scheduling
//!   (§6 "Query-level"), individual operators at operator-level scheduling,
//!   and §7 shared-operator groups with PDT execution splitting.
//! * [`Simulator`] runs the event loop: deliver arrivals, ask the
//!   [`hcq_core::Policy`] to pick a unit, optionally charge the decision's
//!   priority computations at `c_sched` virtual time each (§9.2), execute
//!   the unit's head tuple pipelined to the root (through symmetric-hash
//!   window joins where present), and record per-emission QoS.
//! * [`SimReport`] carries the §9 metrics: average response time,
//!   average/maximum slowdown, ℓ2 norm, per-class breakdowns, plus
//!   scheduling-overhead and utilization measurements.
//!
//! ```
//! use hcq_common::{Nanos, StreamId};
//! use hcq_core::PolicyKind;
//! use hcq_engine::{simulate, SimConfig};
//! use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
//! use hcq_streams::PoissonSource;
//!
//! let mut plan = GlobalPlan::default();
//! plan.add_query(
//!     QueryBuilder::on(StreamId::new(0))
//!         .select(Nanos::from_millis(1), 0.5)
//!         .project(Nanos::from_millis(1))
//!         .build()
//!         .unwrap(),
//! );
//! let report = simulate(
//!     &plan,
//!     &StreamRates::none(),
//!     vec![Box::new(PoissonSource::new(Nanos::from_millis(10), 7))],
//!     PolicyKind::Hnr.build(),
//!     SimConfig::new(1_000),
//! )
//! .unwrap();
//! assert!(report.qos.count > 0);
//! assert!(report.qos.avg_slowdown >= 1.0);
//! ```

pub mod config;
pub mod exec;
pub mod model;
pub mod queues;
pub mod report;
pub mod sim;
pub mod telemetry;
pub mod trace;
pub mod tuple;

pub use config::{
    AdaptConfig, AdaptMode, AdmissionMode, DriftStep, FaultConfig, GovernorConfig, OverloadConfig,
    SchedulingLevel, SimConfig,
};
pub use hcq_metrics::TelemetrySnapshot;
pub use model::{SimModel, UnitDesc, UnitKind};
pub use report::SimReport;
pub use sim::{simulate, simulate_monitored, simulate_traced, Simulator};
pub use telemetry::{JsonlTelemetry, MetricsSink, NoTelemetry, VecTelemetry};
pub use trace::{JsonlTrace, NoTrace, TraceEvent, TraceSink, VecTrace};
pub use tuple::SimTuple;
