//! Simulation output.

use hcq_common::Nanos;
use hcq_metrics::{ClassBreakdown, QosSummary, QosTimeSeries, SlowdownHistogram};

/// Everything a simulation run reports.
#[derive(Debug)]
pub struct SimReport {
    /// Headline QoS over all emitted tuples (Definitions 1–4).
    pub qos: QosSummary,
    /// Per-class breakdown (Figure 11).
    pub classes: ClassBreakdown,
    /// Log-bucketed slowdown distribution.
    pub histogram: SlowdownHistogram,
    /// Optional per-window QoS trajectory (see `SimConfig::sample_window`).
    pub series: Option<QosTimeSeries>,
    /// Source arrivals injected.
    pub arrivals: u64,
    /// Tuples emitted at query roots.
    pub emitted: u64,
    /// Tuples dropped by filters/joins (per query copy).
    pub dropped: u64,
    /// Scheduling points taken.
    pub sched_points: u64,
    /// Priority computations/comparisons reported by the policy.
    pub sched_ops: u64,
    /// Virtual time charged for scheduling (0 unless overhead charging on).
    pub overhead_time: Nanos,
    /// Virtual time spent executing operators.
    pub busy_time: Nanos,
    /// Final virtual clock.
    pub end_time: Nanos,
    /// Time-averaged number of pending tuples across all queues — the
    /// memory metric Chain-style policies minimize.
    pub avg_pending: f64,
    /// Peak simultaneous pending tuples.
    pub peak_pending: usize,
}

impl SimReport {
    /// Measured utilization: operator busy time (plus charged scheduling
    /// overhead) over elapsed virtual time.
    pub fn measured_utilization(&self) -> f64 {
        if self.end_time.is_zero() {
            return 0.0;
        }
        (self.busy_time + self.overhead_time).ratio(self.end_time)
    }

    /// Average scheduler operations per scheduling point — the quantity the
    /// §6 machinery reduces.
    pub fn ops_per_sched_point(&self) -> f64 {
        if self.sched_points == 0 {
            return 0.0;
        }
        self.sched_ops as f64 / self.sched_points as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let r = SimReport {
            qos: QosSummary::default(),
            classes: ClassBreakdown::new(),
            histogram: SlowdownHistogram::default(),
            series: None,
            arrivals: 10,
            emitted: 5,
            dropped: 5,
            sched_points: 4,
            sched_ops: 12,
            overhead_time: Nanos::from_millis(10),
            busy_time: Nanos::from_millis(40),
            end_time: Nanos::from_millis(100),
            avg_pending: 2.0,
            peak_pending: 5,
        };
        assert!((r.measured_utilization() - 0.5).abs() < 1e-12);
        assert!((r.ops_per_sched_point() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_guards() {
        let r = SimReport {
            qos: QosSummary::default(),
            classes: ClassBreakdown::new(),
            histogram: SlowdownHistogram::default(),
            series: None,
            arrivals: 0,
            emitted: 0,
            dropped: 0,
            sched_points: 0,
            sched_ops: 0,
            overhead_time: Nanos::ZERO,
            busy_time: Nanos::ZERO,
            end_time: Nanos::ZERO,
            avg_pending: 0.0,
            peak_pending: 0,
        };
        assert_eq!(r.measured_utilization(), 0.0);
        assert_eq!(r.ops_per_sched_point(), 0.0);
    }
}
