//! Simulation output.

use hcq_common::Nanos;
use hcq_core::UnitStatics;
use hcq_metrics::{ClassBreakdown, OverheadTotals, QosSummary, QosTimeSeries, SlowdownHistogram};

/// Everything a simulation run reports.
#[derive(Debug)]
pub struct SimReport {
    /// Headline QoS over all emitted tuples (Definitions 1–4).
    pub qos: QosSummary,
    /// Per-class breakdown (Figure 11).
    pub classes: ClassBreakdown,
    /// Log-bucketed slowdown distribution.
    pub histogram: SlowdownHistogram,
    /// Optional per-window QoS trajectory (see `SimConfig::sample_window`).
    pub series: Option<QosTimeSeries>,
    /// Source arrivals injected.
    pub arrivals: u64,
    /// Tuples emitted at query roots.
    pub emitted: u64,
    /// Tuples dropped by filters/joins (per query copy).
    pub dropped: u64,
    /// Tuples shed by the overload manager (never executed): rejected at
    /// admission or displaced from a queue tail. 0 under unbounded queues.
    pub shed: u64,
    /// Tuples expired at dequeue because their query's response-time
    /// deadline had already passed. 0 unless a plan sets `with_deadline`.
    pub expired: u64,
    /// Transient operator failures: runs charged but suppressed. Each
    /// failed attempt counts once; a tuple retried twice contributes two.
    pub op_failures: u64,
    /// Total quarantine time assigned after transient operator failures
    /// (sum of cooldowns, not wall-clock overlap).
    pub quarantine_time: Nanos,
    /// Admission-mode transitions taken by the overload governor. 0 when
    /// the governor is disabled.
    pub governor_transitions: u64,
    /// Policy switches taken by the governor's meta-scheduler (engage and
    /// disengage each count). 0 unless `switch_policy` is armed.
    pub policy_switches: u64,
    /// Re-estimated statics publications the online estimator forwarded to
    /// the policy. 0 when adaptation is disabled or observe-only refinement
    /// never crossed the publication bar.
    pub statics_updates: u64,
    /// Priority-domain refreezes the policy acknowledged after published
    /// estimates drifted outside the span frozen at registration.
    pub domain_refreezes: u64,
    /// The estimator's final per-unit statics view (`None` when adaptation
    /// is disabled): smoothed estimates under EWMA, the open window's mean
    /// (or last published values) under windowed estimation. `ideal_time`
    /// is carried through unchanged — only cost and selectivity are
    /// re-estimated.
    pub estimates: Option<Vec<UnitStatics>>,
    /// Source stall time that fell inside the run (`FaultySource` windows
    /// clipped to the final clock).
    pub fault_stall_time: Nanos,
    /// Source stall time scheduled past the end of the run and therefore
    /// never observed. `fault_stall_time + fault_stall_truncated` equals
    /// the total stall time the fault scenario decided.
    pub fault_stall_truncated: Nanos,
    /// Source disconnect events (see `DisconnectSource`).
    pub source_disconnects: u64,
    /// Reconnection attempts across all disconnects.
    pub source_retry_attempts: u64,
    /// Base arrivals lost inside source downtime windows. These never
    /// reached the engine and are *not* part of `arrivals`.
    pub source_lost_arrivals: u64,
    /// Scheduling points taken.
    pub sched_points: u64,
    /// Priority computations/comparisons reported by the policy.
    pub sched_ops: u64,
    /// The same scheduler work itemized by kind (§6 overhead accounting):
    /// candidates scanned, priority evaluations, comparisons, cluster
    /// maintenance, heap operations — always collected, tracing or not.
    pub overhead: OverheadTotals,
    /// Virtual time charged for scheduling (0 unless overhead charging on).
    pub overhead_time: Nanos,
    /// Virtual time spent executing operators.
    pub busy_time: Nanos,
    /// Virtual time spent with total pending load at or above the
    /// configured overload watermark (0 when no watermark is set).
    pub overload_time: Nanos,
    /// Final virtual clock.
    pub end_time: Nanos,
    /// Time-averaged number of pending tuples across all queues — the
    /// memory metric Chain-style policies minimize.
    pub avg_pending: f64,
    /// Peak simultaneous pending tuples.
    pub peak_pending: usize,
    /// Tuples still queued when the run ended (0 when draining).
    pub pending_end: usize,
}

impl SimReport {
    /// Measured utilization: operator busy time (plus charged scheduling
    /// overhead) over elapsed virtual time.
    pub fn measured_utilization(&self) -> f64 {
        if self.end_time.is_zero() {
            return 0.0;
        }
        (self.busy_time + self.overhead_time).ratio(self.end_time)
    }

    /// Average scheduler operations per scheduling point — the quantity the
    /// §6 machinery reduces.
    pub fn ops_per_sched_point(&self) -> f64 {
        if self.sched_points == 0 {
            return 0.0;
        }
        self.sched_ops as f64 / self.sched_points as f64
    }

    /// Average priority evaluations per scheduling point — `ext_overhead`'s
    /// y-axis: O(q) for the naive BSD scan, sub-linear once clustered.
    pub fn evals_per_sched_point(&self) -> f64 {
        self.overhead.evals_per_point()
    }

    /// Fraction of per-copy work units the overload manager shed:
    /// `shed / (emitted + dropped + shed + pending_end)`.
    pub fn shed_fraction(&self) -> f64 {
        let total = self.emitted + self.dropped + self.shed + self.pending_end as u64;
        if total == 0 {
            return 0.0;
        }
        self.shed as f64 / total as f64
    }

    /// Fraction of virtual time spent above the overload watermark.
    pub fn overload_share(&self) -> f64 {
        if self.end_time.is_zero() {
            return 0.0;
        }
        self.overload_time.ratio(self.end_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let r = SimReport {
            qos: QosSummary::default(),
            classes: ClassBreakdown::new(),
            histogram: SlowdownHistogram::default(),
            series: None,
            arrivals: 10,
            emitted: 5,
            dropped: 5,
            shed: 5,
            expired: 0,
            op_failures: 0,
            quarantine_time: Nanos::ZERO,
            governor_transitions: 0,
            policy_switches: 0,
            statics_updates: 0,
            domain_refreezes: 0,
            estimates: None,
            fault_stall_time: Nanos::ZERO,
            fault_stall_truncated: Nanos::ZERO,
            source_disconnects: 0,
            source_retry_attempts: 0,
            source_lost_arrivals: 0,
            sched_points: 4,
            sched_ops: 12,
            overhead: {
                let mut t = OverheadTotals::new();
                t.record(6, 2, 6, 0, 0);
                t.record(6, 4, 6, 0, 0);
                t.sched_points = 4; // four decisions, two of them trivial
                t
            },
            overhead_time: Nanos::from_millis(10),
            busy_time: Nanos::from_millis(40),
            overload_time: Nanos::from_millis(25),
            end_time: Nanos::from_millis(100),
            avg_pending: 2.0,
            peak_pending: 5,
            pending_end: 5,
        };
        assert!((r.measured_utilization() - 0.5).abs() < 1e-12);
        assert!((r.ops_per_sched_point() - 3.0).abs() < 1e-12);
        assert!((r.evals_per_sched_point() - 1.5).abs() < 1e-12);
        assert!((r.shed_fraction() - 0.25).abs() < 1e-12);
        assert!((r.overload_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_guards() {
        let r = SimReport {
            qos: QosSummary::default(),
            classes: ClassBreakdown::new(),
            histogram: SlowdownHistogram::default(),
            series: None,
            arrivals: 0,
            emitted: 0,
            dropped: 0,
            shed: 0,
            expired: 0,
            op_failures: 0,
            quarantine_time: Nanos::ZERO,
            governor_transitions: 0,
            policy_switches: 0,
            statics_updates: 0,
            domain_refreezes: 0,
            estimates: None,
            fault_stall_time: Nanos::ZERO,
            fault_stall_truncated: Nanos::ZERO,
            source_disconnects: 0,
            source_retry_attempts: 0,
            source_lost_arrivals: 0,
            sched_points: 0,
            sched_ops: 0,
            overhead: OverheadTotals::new(),
            overhead_time: Nanos::ZERO,
            busy_time: Nanos::ZERO,
            overload_time: Nanos::ZERO,
            end_time: Nanos::ZERO,
            avg_pending: 0.0,
            peak_pending: 0,
            pending_end: 0,
        };
        assert_eq!(r.measured_utilization(), 0.0);
        assert_eq!(r.ops_per_sched_point(), 0.0);
        assert_eq!(r.evals_per_sched_point(), 0.0);
        assert_eq!(r.shed_fraction(), 0.0);
        assert_eq!(r.overload_share(), 0.0);
    }
}
