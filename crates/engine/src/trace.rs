//! Scheduling-event tracing.
//!
//! The simulator is generic over a [`TraceSink`] that receives one typed
//! [`TraceEvent`] per scheduler-visible action: a scheduling decision with
//! its itemized work counters, each unit execution with its virtual cost,
//! every root emission, every shed tuple, and active fault injections. The
//! default sink is [`NoTrace`], whose `ENABLED = false` lets the compiler
//! eliminate every event-construction site from the monomorphized loop —
//! tracing costs nothing unless a run asks for it, and a traced run makes
//! *identical* scheduling decisions (events observe, never steer).
//!
//! Timestamps are virtual [`Nanos`], so a trace is a pure function of
//! (workload, policy, config): byte-identical across processes, hosts, and
//! `--jobs` counts. That determinism is load-bearing — the golden-trace test
//! pins the full JSONL stream of a small workload.
//!
//! Not to be confused with `hcq_streams::TraceReplay`, which *replays* a
//! recorded arrival schedule into the simulator; this module records what
//! the scheduler did with it.

use std::io::{self, Write};

use hcq_common::Nanos;

/// One scheduler-visible event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A scheduling decision, with the §6 work counters the policy reported
    /// and the virtual time charged for it (0 unless overhead charging on).
    SchedulingPoint {
        /// Virtual time of the decision.
        at: Nanos,
        /// Ready candidates (units / clusters / list positions) inspected.
        candidates_scanned: u64,
        /// Dynamic priority computations.
        priority_evals: u64,
        /// Priority comparisons.
        comparisons: u64,
        /// Cluster maintenance since the previous decision.
        cluster_ops: u64,
        /// Heap / ordered-index operations.
        heap_ops: u64,
        /// Virtual time charged as scheduling overhead (§9.2).
        charged: Nanos,
    },
    /// One unit execution: the selected unit ran its head tuple (pipelined
    /// to the root), costing `cost` of virtual time and emitting `tuples`
    /// root outputs.
    UnitRun {
        /// Virtual time the execution started.
        at: Nanos,
        /// The executed unit.
        unit: u32,
        /// The head tuple's id.
        tuple: u64,
        /// The head tuple's system arrival time (`at − arrival` is the queue
        /// wait the tuple had accrued when selected).
        arrival: Nanos,
        /// Operator time charged while running this unit.
        cost: Nanos,
        /// Root emissions produced by this execution.
        tuples: u64,
    },
    /// A tuple left a query root.
    Emit {
        /// Virtual departure time.
        at: Nanos,
        /// The unit whose execution produced the emission.
        unit: u32,
        /// The emitting query.
        query: u32,
        /// The emitted tuple's id (composite ids have the top bit set).
        tuple: u64,
        /// The stable lineage id: the base arrival this emission's response
        /// time is measured against (composites inherit the later-arriving
        /// constituent's lineage).
        lineage: u64,
        /// The tuple's system arrival time (`at − arrival` is the response
        /// time the QoS accumulator recorded).
        arrival: Nanos,
        /// The tuple's slowdown `H` (≥ 1).
        slowdown: f64,
    },
    /// The overload manager shed a tuple (rejected at admission or
    /// displaced from a queue tail) without executing it.
    Shed {
        /// Virtual time of the shed.
        at: Nanos,
        /// The unit whose queue lost the tuple.
        unit: u32,
        /// The shed tuple's id.
        tuple: u64,
        /// The shed tuple's stable lineage id.
        lineage: u64,
        /// The shed tuple's system arrival time.
        arrival: Nanos,
    },
    /// A fault injection active for this run (reported once at start).
    Fault {
        /// Virtual time (always 0 for run-scoped faults).
        at: Nanos,
        /// Fault family, e.g. `"cost_miscalibration"`.
        kind: &'static str,
        /// The fault's configured magnitude.
        magnitude: f64,
    },
    /// A tuple expired at dequeue: its queueing delay already exceeded its
    /// query's deadline, so it was discarded instead of executed.
    Expire {
        /// Virtual time of the expiry (the scheduling decision's instant).
        at: Nanos,
        /// The unit whose head tuple expired.
        unit: u32,
        /// The deadline-bearing query.
        query: u32,
        /// The expired tuple's id.
        tuple: u64,
        /// The expired tuple's system arrival time.
        arrival: Nanos,
        /// How far past the deadline the tuple already was.
        late_by: Nanos,
    },
    /// The overload governor moved the admission mode one ladder step.
    GovernorTransition {
        /// Virtual time at which the transition took effect (the decision
        /// itself is paced on cadence boundaries, which the clock may have
        /// overshot while the engine was busy).
        at: Nanos,
        /// Admission mode before the transition.
        from: &'static str,
        /// Admission mode after the transition.
        to: &'static str,
        /// Total pending tuples observed at the decision.
        pending: u64,
        /// Fraction of the last cadence window spent above the watermark.
        share: f64,
    },
    /// The governor's meta-scheduler swapped the running policy (base →
    /// overload policy, or back).
    PolicySwitch {
        /// Virtual time at which the switch took effect.
        at: Nanos,
        /// Policy name before the switch.
        from: &'static str,
        /// Policy name after the switch.
        to: &'static str,
        /// Overload share of the window that completed the streak.
        share: f64,
    },
    /// A transient operator failure: the execution was charged, its output
    /// suppressed, and the tuple quarantined (or abandoned when retries ran
    /// out).
    OpFailure {
        /// Virtual time of the failed execution.
        at: Nanos,
        /// The unit whose execution failed.
        unit: u32,
        /// The tuple whose run was lost.
        tuple: u64,
        /// Operator time charged for the failed attempt (counted in
        /// `busy_time` even though the output was suppressed).
        cost: Nanos,
        /// Zero-based attempt number that failed.
        attempt: u32,
        /// False when retries were exhausted and the tuple was abandoned.
        retrying: bool,
    },
}

/// Receiver of [`TraceEvent`]s.
///
/// The simulator is monomorphized per sink; `ENABLED = false` (as on
/// [`NoTrace`]) turns every `if S::ENABLED { … }` emission site into dead
/// code, so the untraced simulator binary is unchanged by this layer.
pub trait TraceSink {
    /// Whether this sink observes events at all. Sinks that do must leave
    /// the default `true`.
    const ENABLED: bool = true;

    /// Observe one event. Events arrive in a deterministic order: faults,
    /// then per scheduling point the `SchedulingPoint` event followed by a
    /// `UnitRun` per selected unit, each immediately followed by the
    /// `Emit`/`Shed` events its execution produced.
    fn event(&mut self, event: &TraceEvent);
}

/// The default sink: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    const ENABLED: bool = false;

    fn event(&mut self, _event: &TraceEvent) {}
}

/// Collects events in memory — the test-suite sink.
#[derive(Debug, Default)]
pub struct VecTrace {
    /// Every event, in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecTrace {
    /// An empty collector.
    pub fn new() -> Self {
        VecTrace::default()
    }
}

impl TraceSink for VecTrace {
    fn event(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// Streams events as JSON Lines: one self-describing object per line, in
/// emission order. Integer fields are exact; `slowdown`/`magnitude` use
/// Rust's shortest-roundtrip float formatting, which is platform-independent
/// — the whole stream is byte-deterministic.
#[derive(Debug)]
pub struct JsonlTrace<W: Write> {
    writer: W,
    /// First write error, if any (subsequent events are dropped).
    error: Option<io::Error>,
}

impl<W: Write> JsonlTrace<W> {
    /// Wrap a writer. Consider a `BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        JsonlTrace {
            writer,
            error: None,
        }
    }

    /// Flush and return the writer, surfacing any deferred write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }

    fn write_event(&mut self, event: &TraceEvent) -> io::Result<()> {
        let w = &mut self.writer;
        match *event {
            TraceEvent::SchedulingPoint {
                at,
                candidates_scanned,
                priority_evals,
                comparisons,
                cluster_ops,
                heap_ops,
                charged,
            } => writeln!(
                w,
                "{{\"type\":\"sched_point\",\"at\":{},\"candidates\":{},\"evals\":{},\
                 \"comparisons\":{},\"cluster_ops\":{},\"heap_ops\":{},\"charged\":{}}}",
                at.as_nanos(),
                candidates_scanned,
                priority_evals,
                comparisons,
                cluster_ops,
                heap_ops,
                charged.as_nanos(),
            ),
            TraceEvent::UnitRun {
                at,
                unit,
                tuple,
                arrival,
                cost,
                tuples,
            } => writeln!(
                w,
                "{{\"type\":\"unit_run\",\"at\":{},\"unit\":{},\"tuple\":{},\
                 \"arrival\":{},\"cost\":{},\"tuples\":{}}}",
                at.as_nanos(),
                unit,
                tuple,
                arrival.as_nanos(),
                cost.as_nanos(),
                tuples,
            ),
            TraceEvent::Emit {
                at,
                unit,
                query,
                tuple,
                lineage,
                arrival,
                slowdown,
            } => writeln!(
                w,
                "{{\"type\":\"emit\",\"at\":{},\"unit\":{},\"query\":{},\
                 \"tuple\":{},\"lineage\":{},\"arrival\":{},\"slowdown\":{}}}",
                at.as_nanos(),
                unit,
                query,
                tuple,
                lineage,
                arrival.as_nanos(),
                slowdown,
            ),
            TraceEvent::Shed {
                at,
                unit,
                tuple,
                lineage,
                arrival,
            } => writeln!(
                w,
                "{{\"type\":\"shed\",\"at\":{},\"unit\":{},\"tuple\":{},\
                 \"lineage\":{},\"arrival\":{}}}",
                at.as_nanos(),
                unit,
                tuple,
                lineage,
                arrival.as_nanos(),
            ),
            TraceEvent::Fault {
                at,
                kind,
                magnitude,
            } => writeln!(
                w,
                "{{\"type\":\"fault\",\"at\":{},\"kind\":\"{}\",\"magnitude\":{}}}",
                at.as_nanos(),
                kind,
                magnitude,
            ),
            TraceEvent::Expire {
                at,
                unit,
                query,
                tuple,
                arrival,
                late_by,
            } => writeln!(
                w,
                "{{\"type\":\"expire\",\"at\":{},\"unit\":{},\"query\":{},\
                 \"tuple\":{},\"arrival\":{},\"late_by\":{}}}",
                at.as_nanos(),
                unit,
                query,
                tuple,
                arrival.as_nanos(),
                late_by.as_nanos(),
            ),
            TraceEvent::GovernorTransition {
                at,
                from,
                to,
                pending,
                share,
            } => writeln!(
                w,
                "{{\"type\":\"governor\",\"at\":{},\"from\":\"{}\",\"to\":\"{}\",\
                 \"pending\":{},\"share\":{}}}",
                at.as_nanos(),
                from,
                to,
                pending,
                share,
            ),
            TraceEvent::PolicySwitch {
                at,
                from,
                to,
                share,
            } => writeln!(
                w,
                "{{\"type\":\"policy_switch\",\"at\":{},\"from\":\"{}\",\"to\":\"{}\",\
                 \"share\":{}}}",
                at.as_nanos(),
                from,
                to,
                share,
            ),
            TraceEvent::OpFailure {
                at,
                unit,
                tuple,
                cost,
                attempt,
                retrying,
            } => writeln!(
                w,
                "{{\"type\":\"op_failure\",\"at\":{},\"unit\":{},\"tuple\":{},\
                 \"cost\":{},\"attempt\":{},\"retrying\":{}}}",
                at.as_nanos(),
                unit,
                tuple,
                cost.as_nanos(),
                attempt,
                retrying,
            ),
        }
    }
}

impl<W: Write> TraceSink for JsonlTrace<W> {
    fn event(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.write_event(event) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Fault {
                at: Nanos::ZERO,
                kind: "cost_miscalibration",
                magnitude: 0.4,
            },
            TraceEvent::SchedulingPoint {
                at: Nanos(5),
                candidates_scanned: 3,
                priority_evals: 3,
                comparisons: 3,
                cluster_ops: 1,
                heap_ops: 2,
                charged: Nanos(6),
            },
            TraceEvent::UnitRun {
                at: Nanos(11),
                unit: 2,
                tuple: 7,
                arrival: Nanos(4),
                cost: Nanos(1000),
                tuples: 1,
            },
            TraceEvent::Emit {
                at: Nanos(1011),
                unit: 2,
                query: 2,
                tuple: 7,
                lineage: 7,
                arrival: Nanos(4),
                slowdown: 1.5,
            },
            TraceEvent::Shed {
                at: Nanos(1011),
                unit: 0,
                tuple: 9,
                lineage: 9,
                arrival: Nanos(6),
            },
            TraceEvent::Expire {
                at: Nanos(1500),
                unit: 1,
                query: 1,
                tuple: 8,
                arrival: Nanos(5),
                late_by: Nanos(250),
            },
            TraceEvent::GovernorTransition {
                at: Nanos(2000),
                from: "DropTail",
                to: "QosShed",
                pending: 40,
                share: 0.75,
            },
            TraceEvent::PolicySwitch {
                at: Nanos(2100),
                from: "BSD-Logarithmic",
                to: "LSF",
                share: 0.8,
            },
            TraceEvent::OpFailure {
                at: Nanos(2200),
                unit: 3,
                tuple: 12,
                cost: Nanos(900),
                attempt: 0,
                retrying: true,
            },
        ]
    }

    #[test]
    fn jsonl_renders_one_line_per_event() {
        let mut sink = JsonlTrace::new(Vec::new());
        for e in sample_events() {
            sink.event(&e);
        }
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 9);
        assert_eq!(
            lines[0],
            "{\"type\":\"fault\",\"at\":0,\"kind\":\"cost_miscalibration\",\"magnitude\":0.4}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"sched_point\",\"at\":5,\"candidates\":3,\"evals\":3,\
             \"comparisons\":3,\"cluster_ops\":1,\"heap_ops\":2,\"charged\":6}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"unit_run\",\"at\":11,\"unit\":2,\"tuple\":7,\
             \"arrival\":4,\"cost\":1000,\"tuples\":1}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"emit\",\"at\":1011,\"unit\":2,\"query\":2,\"tuple\":7,\
             \"lineage\":7,\"arrival\":4,\"slowdown\":1.5}"
        );
        assert_eq!(
            lines[4],
            "{\"type\":\"shed\",\"at\":1011,\"unit\":0,\"tuple\":9,\"lineage\":9,\"arrival\":6}"
        );
        assert_eq!(
            lines[5],
            "{\"type\":\"expire\",\"at\":1500,\"unit\":1,\"query\":1,\"tuple\":8,\
             \"arrival\":5,\"late_by\":250}"
        );
        assert_eq!(
            lines[6],
            "{\"type\":\"governor\",\"at\":2000,\"from\":\"DropTail\",\"to\":\"QosShed\",\
             \"pending\":40,\"share\":0.75}"
        );
        assert_eq!(
            lines[7],
            "{\"type\":\"policy_switch\",\"at\":2100,\"from\":\"BSD-Logarithmic\",\
             \"to\":\"LSF\",\"share\":0.8}"
        );
        assert_eq!(
            lines[8],
            "{\"type\":\"op_failure\",\"at\":2200,\"unit\":3,\"tuple\":12,\
             \"cost\":900,\"attempt\":0,\"retrying\":true}"
        );
    }

    #[test]
    fn vec_trace_collects_in_order() {
        let mut sink = VecTrace::new();
        for e in sample_events() {
            sink.event(&e);
        }
        assert_eq!(sink.events, sample_events());
    }

    #[test]
    fn no_trace_is_disabled() {
        const { assert!(!NoTrace::ENABLED) };
        const { assert!(VecTrace::ENABLED) };
        const { assert!(<JsonlTrace<Vec<u8>> as TraceSink>::ENABLED) };
    }

    #[test]
    fn jsonl_write_error_is_deferred_to_finish() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlTrace::new(Failing);
        sink.event(&TraceEvent::Shed {
            at: Nanos(1),
            unit: 0,
            tuple: 0,
            lineage: 0,
            arrival: Nanos(0),
        });
        // Further events are dropped silently; finish surfaces the error.
        sink.event(&TraceEvent::Shed {
            at: Nanos(2),
            unit: 0,
            tuple: 1,
            lineage: 1,
            arrival: Nanos(0),
        });
        assert!(sink.finish().is_err());
    }
}
