//! Simulation configuration.

use hcq_common::Nanos;
use hcq_core::{PolicyKind, SharingStrategy};

/// Where scheduling points fall (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingLevel {
    /// Non-preemptive: a scheduling point occurs when a *query* finishes a
    /// tuple; execution pipelines whole leaf-to-root segments. This is the
    /// level every §9 experiment uses.
    Query,
    /// Preemptive: a scheduling point after every *operator* execution; each
    /// operator has its own queue and is a schedulable unit. Supported for
    /// join-free, sharing-free workloads.
    Operator,
}

/// What happens when a tuple arrives at a full unit queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Queues grow without bound (the paper's assumption and the default):
    /// no tuple is ever refused, and behavior is bit-identical to an engine
    /// without overload management.
    #[default]
    Unbounded,
    /// Per-unit hard bound: an arrival at a full queue is discarded. Cheap
    /// and local, but blind to QoS — a high-priority query sheds as readily
    /// as a low-priority one.
    DropTail,
    /// QoS-aware shedding: when the arriving unit's queue is full *and*
    /// total pending load is at or above the watermark, the engine sheds
    /// the tail tuple of the unit with the lowest static HNR priority
    /// `S/(C̄·T)` — sacrificing the tuple whose processing would contribute
    /// least to slowdown QoS (the Chain drop-rate intuition applied to
    /// admission). The arriving tuple itself is shed when its own unit is
    /// the least valuable. Individual queues may transiently exceed
    /// `capacity` below the watermark; total load stays bounded.
    QosShed,
}

/// Bounded-queue / load-shedding configuration (off by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadConfig {
    /// Admission decision at a full queue.
    pub mode: AdmissionMode,
    /// Per-unit queue capacity (tuples). Ignored under
    /// [`AdmissionMode::Unbounded`]; must be ≥ 1 otherwise.
    pub capacity: usize,
    /// Global pending-tuple threshold: above it the engine accrues
    /// time-in-overload, and [`AdmissionMode::QosShed`] arms its shedder.
    /// `0` disables both (no overload accounting, shedding armed whenever a
    /// queue fills).
    pub watermark: usize,
}

/// Deterministic fault injection (engine side). Source-side faults — bursts
/// and stalls — live in `hcq_streams::FaultySource`; this knob covers the
/// engine-internal failure mode: the calibrated per-operator cost `C̄_x`
/// being wrong at run time while policies keep prioritizing on the stale
/// statics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Maximum relative cost misestimation `m`: each operator's *actual*
    /// per-execution cost is its nominal cost scaled by a persistent factor
    /// drawn deterministically from `[1−m, 1+m]` (a pure function of the
    /// operator and `seed` — identical across policies, so miscalibrated
    /// runs remain comparable). `0` disables.
    pub cost_miscalibration: f64,
    /// Seed for the fault draws, independent of the workload seed so fault
    /// scenarios can vary while the workload realization stays fixed.
    pub seed: u64,
    /// Per-execution probability of a transient operator failure: the run is
    /// charged its full virtual-time cost but the output is suppressed, and
    /// the tuple is quarantined for [`FaultConfig::op_failure_cooldown`]
    /// before being retried (a pure function of tuple/unit/attempt/`seed`,
    /// so identical across policies). `0` disables.
    pub op_failure_prob: f64,
    /// Quarantine length after a transient operator failure; the tuple is
    /// re-admitted once the cooldown elapses.
    pub op_failure_cooldown: Nanos,
    /// Retries after the first failure before the tuple is abandoned
    /// (counted as dropped). `0` means one attempt total.
    pub op_failure_retries: u32,
}

/// Closed-loop overload governor configuration (off by default).
///
/// When enabled, the engine samples its own queue-depth and overload-share
/// signals every [`GovernorConfig::cadence`] of virtual time and walks the
/// admission-mode ladder `Unbounded → DropTail → QosShed` (and back down)
/// with hysteresis bands and a minimum dwell time so the mode never flaps.
/// The configured [`OverloadConfig::mode`] is the ladder *floor*: the
/// governor only escalates from there and never de-escalates below it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Master switch. When false the engine carries no governor state and
    /// behaves bit-identically to an ungoverned run.
    pub enabled: bool,
    /// Virtual-time interval between governor decisions (must be positive
    /// when enabled).
    pub cadence: Nanos,
    /// Minimum virtual time between two mode transitions (anti-flapping).
    pub min_dwell: Nanos,
    /// Escalate one ladder step when total pending tuples reach this level.
    pub escalate_pending: usize,
    /// De-escalate one step only when total pending tuples are at or below
    /// this level (must be < `escalate_pending` for a real hysteresis band).
    pub deescalate_pending: usize,
    /// Escalate when the fraction of the last cadence window spent above
    /// the governor watermark reaches this share.
    pub escalate_share: f64,
    /// De-escalate only when the window overload share is at or below this.
    pub deescalate_share: f64,
    /// Per-unit queue capacity the governor applies while in a bounded mode
    /// (DropTail/QosShed); must be ≥ 1 when enabled.
    pub capacity: usize,
    /// Pending-tuple watermark the governor measures its window overload
    /// share against (and that arms QosShed while escalated).
    pub watermark: usize,
    /// Arm the meta-scheduler: on sustained overload the governor swaps the
    /// running policy for [`GovernorConfig::overload_policy`] (re-syncing it
    /// to the live queue state), and swaps the original back once the
    /// overload regime subsides. Off by default — the governor then only
    /// walks the admission-mode ladder.
    pub switch_policy: bool,
    /// Policy engaged while the overload regime persists. LSF (max-slowdown
    /// minimizing) is the natural overload triage choice: under saturation
    /// the tail, not the average, is what degrades first.
    pub overload_policy: PolicyKind,
    /// Engage the overload policy when the window overload share is at or
    /// above this level for [`GovernorConfig::switch_sustain`] consecutive
    /// complete windows.
    pub switch_share: f64,
    /// Return to the base policy when the share is at or below this level
    /// for the same number of consecutive complete windows (must be <
    /// `switch_share` for a real hysteresis band).
    pub return_share: f64,
    /// Consecutive complete cadence windows required on either side of the
    /// switch band (≥ 1) — incomplete windows never count.
    pub switch_sustain: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            enabled: false,
            cadence: Nanos::from_millis(50),
            min_dwell: Nanos::from_millis(200),
            escalate_pending: 0,
            deescalate_pending: 0,
            escalate_share: 0.5,
            deescalate_share: 0.1,
            capacity: 0,
            watermark: 0,
            switch_policy: false,
            overload_policy: PolicyKind::Lsf,
            switch_share: 0.6,
            return_share: 0.15,
            switch_sustain: 2,
        }
    }
}

/// How the adaptive layer folds execution observations into estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptMode {
    /// Exponentially-weighted moving average over per-cadence *window
    /// means* with smoothing factor [`AdaptConfig::alpha`]: one EWMA step
    /// per publication window, fed the window's mean observation. Batching
    /// first kills the per-execution variance (a tuple dropped by the entry
    /// operator costs far less than one that runs the full pipeline) before
    /// smoothing across windows. The default.
    #[default]
    Ewma,
    /// Tumbling-window means, reset at every publication cadence: each
    /// window sees only its own phase (right for on/off workloads), at the
    /// price of higher variance within one.
    Windowed,
}

/// Online statistics adaptation (§10 "dynamic environment"; off by default).
///
/// When enabled, the engine observes every unit execution's charged cost and
/// root emissions — the same quantities the `UnitRun` trace event reports —
/// and folds them into per-unit estimators. Every [`AdaptConfig::cadence`]
/// of virtual time, units with at least [`AdaptConfig::min_observations`]
/// fresh samples get their statics re-published through the policy's
/// `on_statics_update` path (O(1) per unit for clustered BSD), and when a
/// published `Φ` drifts outside the policy's frozen priority domain by more
/// than [`AdaptConfig::refreeze_factor`], the engine asks the policy to
/// refreeze the domain. Disabled, the engine carries no estimator state and
/// behaves bit-identically to a non-adaptive run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// Master switch. When false the engine allocates nothing and every
    /// observation site compiles down to a null-pointer check.
    pub enabled: bool,
    /// Estimate shape: EWMA or tumbling-window means.
    pub mode: AdaptMode,
    /// EWMA smoothing factor in (0, 1] (weight of the newest window mean);
    /// ignored under [`AdaptMode::Windowed`].
    pub alpha: f64,
    /// Virtual-time interval between publications (must be positive when
    /// enabled).
    pub cadence: Nanos,
    /// Minimum fresh samples a unit needs before its estimate is published
    /// at a cadence boundary — keeps one noisy execution from repricing a
    /// unit.
    pub min_observations: u64,
    /// Slack ratio on the frozen `Φ` domain before a refreeze is requested:
    /// published `Φ` outside `[lo/f, hi·f]` triggers one. Must be ≥ 1; the
    /// paper-faithful "never refreeze" is `f64::INFINITY`.
    pub refreeze_factor: f64,
    /// When false, estimates are maintained but never published to the
    /// policy — an observe-only probe whose scheduling is bit-identical to
    /// a non-adaptive run (used to measure true statics under faults, and
    /// as an ablation).
    pub publish: bool,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            enabled: false,
            mode: AdaptMode::Ewma,
            alpha: 0.2,
            cadence: Nanos::from_millis(50),
            min_observations: 2,
            refreeze_factor: 1.5,
            publish: true,
        }
    }
}

/// One step of a piecewise drifting-statics schedule: from `at` onward,
/// every operator's actual cost is additionally scaled by `cost_factor` and
/// every selectivity decision by `selectivity_factor` (clamped into [0, 1]
/// at the decision). Steps model environment drift — data distribution or
/// load changes that move the *true* statistics away from whatever the plan
/// (and any earlier observation) believed — and are policy-independent, so
/// drifted runs remain comparable across policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStep {
    /// Virtual time the step takes effect.
    pub at: Nanos,
    /// Multiplier on actual operator cost from `at` on (must be positive
    /// and finite).
    pub cost_factor: f64,
    /// Multiplier on operator selectivity from `at` on (must be
    /// non-negative and finite; the effective probability clamps to 1).
    pub selectivity_factor: f64,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduling granularity.
    pub level: SchedulingLevel,
    /// Priority strategy for §7 shared-operator groups (ignored when the
    /// plan declares no sharing).
    pub sharing: SharingStrategy,
    /// Charge `ops_counted × sched_op_cost` of virtual time per scheduling
    /// point (§9.2's accounting). Off by default: the policy-comparison
    /// figures (5–12) treat scheduling as free, as the paper does.
    pub charge_overhead: bool,
    /// Cost of one priority computation/comparison; `None` means "the cost
    /// of the cheapest operator in the query plans" (§9.2).
    pub sched_op_cost: Option<Nanos>,
    /// Total source arrivals to inject (summed over all streams).
    pub max_arrivals: u64,
    /// Keep processing queued work after the last arrival.
    pub drain: bool,
    /// Master seed for attribute values and selectivity coins.
    pub seed: u64,
    /// Collect a per-window QoS time series with this window width
    /// (`None` = off). Useful for visualizing burst dynamics.
    pub sample_window: Option<Nanos>,
    /// Per-execution operator-cost jitter: each execution's cost is scaled
    /// by a deterministic pseudo-random factor in `[1−j, 1+j]` (a pure
    /// function of tuple/operator/seed, so still policy-independent).
    /// 0 = the paper's deterministic costs.
    pub cost_jitter: f64,
    /// Bounded queues and load shedding (default: unbounded, no shedding).
    pub overload: OverloadConfig,
    /// Deterministic engine-side fault injection (default: none).
    pub faults: FaultConfig,
    /// Closed-loop admission-mode governor (default: disabled).
    pub governor: GovernorConfig,
    /// Online statistics adaptation (default: disabled).
    pub adapt: AdaptConfig,
    /// Piecewise drifting-statics schedule, sorted by
    /// [`DriftStep::at`] (default: empty — stationary true statistics).
    pub drift: Vec<DriftStep>,
    /// Virtual-time cadence between telemetry snapshots (default 100 ms).
    /// Only read when a run is monitored (a [`crate::MetricsSink`] with
    /// `ENABLED = true` is attached); otherwise no sampling happens at all.
    pub telemetry_cadence: Nanos,
}

impl SimConfig {
    /// Query-level, PDT sharing, no overhead charging, draining, seed 0.
    pub fn new(max_arrivals: u64) -> Self {
        SimConfig {
            level: SchedulingLevel::Query,
            sharing: SharingStrategy::Pdt,
            charge_overhead: false,
            sched_op_cost: None,
            max_arrivals,
            drain: true,
            seed: 0,
            sample_window: None,
            cost_jitter: 0.0,
            overload: OverloadConfig::default(),
            faults: FaultConfig::default(),
            governor: GovernorConfig::default(),
            adapt: AdaptConfig::default(),
            drift: Vec::new(),
            telemetry_cadence: Nanos::from_millis(100),
        }
    }

    /// Bound every unit queue at `capacity` tuples under `mode`.
    pub fn with_admission(mut self, mode: AdmissionMode, capacity: usize) -> Self {
        self.overload.mode = mode;
        self.overload.capacity = capacity;
        self
    }

    /// Set the global pending-tuple watermark (overload accounting starts,
    /// and QoS shedding arms, at this total load).
    pub fn with_watermark(mut self, watermark: usize) -> Self {
        self.overload.watermark = watermark;
        self
    }

    /// Enable persistent per-operator cost misestimation: each operator's
    /// actual cost is scaled by a deterministic factor from `[1−m, 1+m]`,
    /// drawn from `fault_seed`. `m` up to (exclusive) 8 is accepted — past
    /// `m = 1` the low side of the draw would go non-positive, so realized
    /// factors clamp to a 1% floor (the high side reaches `1+m`, i.e. up to
    /// 4× actual cost at `m = 3`); for `m < 1` behavior is unchanged from
    /// the historical [0, 1) range.
    pub fn with_cost_miscalibration(mut self, m: f64, fault_seed: u64) -> Self {
        assert!(
            (0.0..8.0).contains(&m),
            "miscalibration must be in [0, 8), got {m}"
        );
        self.faults.cost_miscalibration = m;
        self.faults.seed = fault_seed;
        self
    }

    /// Enable transient operator failures: each execution fails with
    /// probability `p` (in [0, 1)), charging its cost but suppressing
    /// output; the tuple is quarantined for `cooldown` and retried up to
    /// `retries` times before being abandoned. Draws are keyed on
    /// `FaultConfig::seed` (set it via [`SimConfig::with_cost_miscalibration`]
    /// or directly).
    pub fn with_op_failures(mut self, p: f64, cooldown: Nanos, retries: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "op-failure probability must be in [0, 1), got {p}"
        );
        assert!(
            p == 0.0 || !cooldown.is_zero(),
            "op-failure cooldown must be positive when failures are enabled"
        );
        self.faults.op_failure_prob = p;
        self.faults.op_failure_cooldown = cooldown;
        self.faults.op_failure_retries = retries;
        self
    }

    /// Attach the closed-loop overload governor. `governor.enabled` must be
    /// true, its cadence and dwell positive, its capacity ≥ 1, and its
    /// hysteresis bands well-formed (escalate thresholds strictly above
    /// their de-escalate counterparts).
    pub fn with_governor(mut self, governor: GovernorConfig) -> Self {
        assert!(governor.enabled, "with_governor requires enabled = true");
        assert!(
            !governor.cadence.is_zero(),
            "governor cadence must be positive"
        );
        assert!(
            !governor.min_dwell.is_zero(),
            "governor min_dwell must be positive"
        );
        assert!(governor.capacity >= 1, "governor capacity must be >= 1");
        assert!(
            governor.escalate_pending > governor.deescalate_pending,
            "escalate_pending must exceed deescalate_pending (hysteresis band)"
        );
        assert!(
            governor.escalate_share > governor.deescalate_share,
            "escalate_share must exceed deescalate_share (hysteresis band)"
        );
        if governor.switch_policy {
            assert!(
                governor.switch_share > governor.return_share,
                "switch_share must exceed return_share (hysteresis band)"
            );
            assert!(governor.switch_sustain >= 1, "switch_sustain must be >= 1");
        }
        self.governor = governor;
        self
    }

    /// Attach online statistics adaptation. `adapt.enabled` must be true,
    /// its cadence positive, its alpha in (0, 1], and its refreeze slack
    /// ≥ 1.
    pub fn with_adaptation(mut self, adapt: AdaptConfig) -> Self {
        assert!(adapt.enabled, "with_adaptation requires enabled = true");
        assert!(
            !adapt.cadence.is_zero(),
            "adaptation cadence must be positive"
        );
        assert!(
            adapt.alpha > 0.0 && adapt.alpha <= 1.0,
            "adaptation alpha must be in (0, 1], got {}",
            adapt.alpha
        );
        assert!(
            adapt.refreeze_factor >= 1.0,
            "refreeze factor must be >= 1, got {}",
            adapt.refreeze_factor
        );
        self.adapt = adapt;
        self
    }

    /// Attach a piecewise drifting-statics schedule. Steps must be sorted
    /// by time with positive finite cost factors and non-negative finite
    /// selectivity factors.
    pub fn with_drift(mut self, steps: Vec<DriftStep>) -> Self {
        for pair in steps.windows(2) {
            assert!(
                pair[0].at <= pair[1].at,
                "drift steps must be sorted by time"
            );
        }
        for s in &steps {
            assert!(
                s.cost_factor.is_finite() && s.cost_factor > 0.0,
                "drift cost factor must be positive and finite, got {}",
                s.cost_factor
            );
            assert!(
                s.selectivity_factor.is_finite() && s.selectivity_factor >= 0.0,
                "drift selectivity factor must be non-negative and finite, got {}",
                s.selectivity_factor
            );
        }
        self.drift = steps;
        self
    }

    /// Enable operator-cost jitter (fraction in [0, 1)).
    pub fn with_cost_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.cost_jitter = jitter;
        self
    }

    /// Enable per-window QoS sampling.
    pub fn with_sample_window(mut self, window: Nanos) -> Self {
        self.sample_window = Some(window);
        self
    }

    /// Set the telemetry sampling cadence (virtual time; must be positive).
    pub fn with_telemetry_cadence(mut self, cadence: Nanos) -> Self {
        assert!(!cadence.is_zero(), "telemetry cadence must be positive");
        self.telemetry_cadence = cadence;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style scheduling level override.
    pub fn with_level(mut self, level: SchedulingLevel) -> Self {
        self.level = level;
        self
    }

    /// Builder-style sharing strategy override.
    pub fn with_sharing(mut self, sharing: SharingStrategy) -> Self {
        self.sharing = sharing;
        self
    }

    /// Enable §9.2 overhead charging.
    pub fn with_overhead(mut self, charge: bool) -> Self {
        self.charge_overhead = charge;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = SimConfig::new(100);
        assert_eq!(c.level, SchedulingLevel::Query);
        assert_eq!(c.sharing, SharingStrategy::Pdt);
        assert!(!c.charge_overhead);
        assert!(c.drain);
        assert_eq!(c.max_arrivals, 100);
        assert_eq!(c.overload.mode, AdmissionMode::Unbounded);
        assert_eq!(c.overload.capacity, 0);
        assert_eq!(c.overload.watermark, 0);
        assert_eq!(c.faults.cost_miscalibration, 0.0);
        assert_eq!(c.faults.op_failure_prob, 0.0);
        assert!(!c.governor.enabled);
        assert_eq!(c.telemetry_cadence, Nanos::from_millis(100));
    }

    #[test]
    fn telemetry_cadence_builder() {
        let c = SimConfig::new(1).with_telemetry_cadence(Nanos::from_millis(250));
        assert_eq!(c.telemetry_cadence, Nanos::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_telemetry_cadence_rejected() {
        let _ = SimConfig::new(1).with_telemetry_cadence(Nanos::ZERO);
    }

    #[test]
    fn overload_and_fault_builders() {
        let c = SimConfig::new(1)
            .with_admission(AdmissionMode::QosShed, 16)
            .with_watermark(200)
            .with_cost_miscalibration(0.5, 99)
            .with_op_failures(0.1, Nanos::from_millis(5), 3);
        assert_eq!(c.overload.mode, AdmissionMode::QosShed);
        assert_eq!(c.overload.capacity, 16);
        assert_eq!(c.overload.watermark, 200);
        assert_eq!(c.faults.cost_miscalibration, 0.5);
        assert_eq!(c.faults.seed, 99);
        assert_eq!(c.faults.op_failure_prob, 0.1);
        assert_eq!(c.faults.op_failure_cooldown, Nanos::from_millis(5));
        assert_eq!(c.faults.op_failure_retries, 3);
    }

    #[test]
    fn governor_builder() {
        let g = GovernorConfig {
            enabled: true,
            escalate_pending: 100,
            deescalate_pending: 20,
            capacity: 32,
            watermark: 64,
            ..GovernorConfig::default()
        };
        let c = SimConfig::new(1).with_governor(g);
        assert!(c.governor.enabled);
        assert_eq!(c.governor.escalate_pending, 100);
        assert_eq!(c.governor.capacity, 32);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn governor_rejects_inverted_band() {
        let g = GovernorConfig {
            enabled: true,
            escalate_pending: 10,
            deescalate_pending: 10,
            capacity: 32,
            ..GovernorConfig::default()
        };
        let _ = SimConfig::new(1).with_governor(g);
    }

    #[test]
    fn governor_switch_defaults_off_with_sane_band() {
        let g = GovernorConfig::default();
        assert!(!g.switch_policy);
        assert_eq!(g.overload_policy, PolicyKind::Lsf);
        assert!(g.switch_share > g.return_share);
        assert!(g.switch_sustain >= 1);
    }

    #[test]
    #[should_panic(expected = "switch_share")]
    fn governor_rejects_inverted_switch_band() {
        let g = GovernorConfig {
            enabled: true,
            escalate_pending: 10,
            deescalate_pending: 2,
            capacity: 32,
            switch_policy: true,
            switch_share: 0.1,
            return_share: 0.5,
            ..GovernorConfig::default()
        };
        let _ = SimConfig::new(1).with_governor(g);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn governor_rejects_zero_capacity() {
        let g = GovernorConfig {
            enabled: true,
            escalate_pending: 10,
            deescalate_pending: 2,
            capacity: 0,
            ..GovernorConfig::default()
        };
        let _ = SimConfig::new(1).with_governor(g);
    }

    #[test]
    fn adaptation_defaults_off() {
        let c = SimConfig::new(10);
        assert!(!c.adapt.enabled);
        assert!(c.drift.is_empty());
    }

    #[test]
    fn adaptation_builder() {
        let c = SimConfig::new(10).with_adaptation(AdaptConfig {
            enabled: true,
            alpha: 0.3,
            cadence: Nanos::from_millis(20),
            ..AdaptConfig::default()
        });
        assert!(c.adapt.enabled);
        assert_eq!(c.adapt.alpha, 0.3);
        assert_eq!(c.adapt.mode, AdaptMode::Ewma);
        assert!(c.adapt.publish);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn adaptation_rejects_bad_alpha() {
        let _ = SimConfig::new(1).with_adaptation(AdaptConfig {
            enabled: true,
            alpha: 1.5,
            ..AdaptConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn adaptation_rejects_zero_cadence() {
        let _ = SimConfig::new(1).with_adaptation(AdaptConfig {
            enabled: true,
            cadence: Nanos::ZERO,
            ..AdaptConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "refreeze")]
    fn adaptation_rejects_sub_unity_refreeze_slack() {
        let _ = SimConfig::new(1).with_adaptation(AdaptConfig {
            enabled: true,
            refreeze_factor: 0.5,
            ..AdaptConfig::default()
        });
    }

    #[test]
    fn drift_builder_and_validation() {
        let c = SimConfig::new(1).with_drift(vec![
            DriftStep {
                at: Nanos::from_millis(10),
                cost_factor: 2.0,
                selectivity_factor: 0.5,
            },
            DriftStep {
                at: Nanos::from_millis(30),
                cost_factor: 0.5,
                selectivity_factor: 1.0,
            },
        ]);
        assert_eq!(c.drift.len(), 2);
        assert_eq!(c.drift[1].cost_factor, 0.5);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn drift_rejects_unsorted_steps() {
        let _ = SimConfig::new(1).with_drift(vec![
            DriftStep {
                at: Nanos::from_millis(30),
                cost_factor: 2.0,
                selectivity_factor: 1.0,
            },
            DriftStep {
                at: Nanos::from_millis(10),
                cost_factor: 2.0,
                selectivity_factor: 1.0,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "cost factor")]
    fn drift_rejects_non_positive_cost_factor() {
        let _ = SimConfig::new(1).with_drift(vec![DriftStep {
            at: Nanos::ZERO,
            cost_factor: 0.0,
            selectivity_factor: 1.0,
        }]);
    }

    #[test]
    fn wide_miscalibration_is_accepted() {
        let c = SimConfig::new(1).with_cost_miscalibration(3.0, 5);
        assert_eq!(c.faults.cost_miscalibration, 3.0);
    }

    #[test]
    #[should_panic(expected = "miscalibration")]
    fn absurd_miscalibration_is_rejected() {
        let _ = SimConfig::new(1).with_cost_miscalibration(8.0, 5);
    }

    #[test]
    fn builders() {
        let c = SimConfig::new(1)
            .with_seed(9)
            .with_level(SchedulingLevel::Operator)
            .with_sharing(SharingStrategy::Max)
            .with_overhead(true);
        assert_eq!(c.seed, 9);
        assert_eq!(c.level, SchedulingLevel::Operator);
        assert_eq!(c.sharing, SharingStrategy::Max);
        assert!(c.charge_overhead);
    }
}
