//! Simulation configuration.

use hcq_common::Nanos;
use hcq_core::SharingStrategy;

/// Where scheduling points fall (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingLevel {
    /// Non-preemptive: a scheduling point occurs when a *query* finishes a
    /// tuple; execution pipelines whole leaf-to-root segments. This is the
    /// level every §9 experiment uses.
    Query,
    /// Preemptive: a scheduling point after every *operator* execution; each
    /// operator has its own queue and is a schedulable unit. Supported for
    /// join-free, sharing-free workloads.
    Operator,
}

/// What happens when a tuple arrives at a full unit queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Queues grow without bound (the paper's assumption and the default):
    /// no tuple is ever refused, and behavior is bit-identical to an engine
    /// without overload management.
    #[default]
    Unbounded,
    /// Per-unit hard bound: an arrival at a full queue is discarded. Cheap
    /// and local, but blind to QoS — a high-priority query sheds as readily
    /// as a low-priority one.
    DropTail,
    /// QoS-aware shedding: when the arriving unit's queue is full *and*
    /// total pending load is at or above the watermark, the engine sheds
    /// the tail tuple of the unit with the lowest static HNR priority
    /// `S/(C̄·T)` — sacrificing the tuple whose processing would contribute
    /// least to slowdown QoS (the Chain drop-rate intuition applied to
    /// admission). The arriving tuple itself is shed when its own unit is
    /// the least valuable. Individual queues may transiently exceed
    /// `capacity` below the watermark; total load stays bounded.
    QosShed,
}

/// Bounded-queue / load-shedding configuration (off by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadConfig {
    /// Admission decision at a full queue.
    pub mode: AdmissionMode,
    /// Per-unit queue capacity (tuples). Ignored under
    /// [`AdmissionMode::Unbounded`]; must be ≥ 1 otherwise.
    pub capacity: usize,
    /// Global pending-tuple threshold: above it the engine accrues
    /// time-in-overload, and [`AdmissionMode::QosShed`] arms its shedder.
    /// `0` disables both (no overload accounting, shedding armed whenever a
    /// queue fills).
    pub watermark: usize,
}

/// Deterministic fault injection (engine side). Source-side faults — bursts
/// and stalls — live in `hcq_streams::FaultySource`; this knob covers the
/// engine-internal failure mode: the calibrated per-operator cost `C̄_x`
/// being wrong at run time while policies keep prioritizing on the stale
/// statics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Maximum relative cost misestimation `m`: each operator's *actual*
    /// per-execution cost is its nominal cost scaled by a persistent factor
    /// drawn deterministically from `[1−m, 1+m]` (a pure function of the
    /// operator and `seed` — identical across policies, so miscalibrated
    /// runs remain comparable). `0` disables.
    pub cost_miscalibration: f64,
    /// Seed for the fault draws, independent of the workload seed so fault
    /// scenarios can vary while the workload realization stays fixed.
    pub seed: u64,
    /// Per-execution probability of a transient operator failure: the run is
    /// charged its full virtual-time cost but the output is suppressed, and
    /// the tuple is quarantined for [`FaultConfig::op_failure_cooldown`]
    /// before being retried (a pure function of tuple/unit/attempt/`seed`,
    /// so identical across policies). `0` disables.
    pub op_failure_prob: f64,
    /// Quarantine length after a transient operator failure; the tuple is
    /// re-admitted once the cooldown elapses.
    pub op_failure_cooldown: Nanos,
    /// Retries after the first failure before the tuple is abandoned
    /// (counted as dropped). `0` means one attempt total.
    pub op_failure_retries: u32,
}

/// Closed-loop overload governor configuration (off by default).
///
/// When enabled, the engine samples its own queue-depth and overload-share
/// signals every [`GovernorConfig::cadence`] of virtual time and walks the
/// admission-mode ladder `Unbounded → DropTail → QosShed` (and back down)
/// with hysteresis bands and a minimum dwell time so the mode never flaps.
/// The configured [`OverloadConfig::mode`] is the ladder *floor*: the
/// governor only escalates from there and never de-escalates below it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Master switch. When false the engine carries no governor state and
    /// behaves bit-identically to an ungoverned run.
    pub enabled: bool,
    /// Virtual-time interval between governor decisions (must be positive
    /// when enabled).
    pub cadence: Nanos,
    /// Minimum virtual time between two mode transitions (anti-flapping).
    pub min_dwell: Nanos,
    /// Escalate one ladder step when total pending tuples reach this level.
    pub escalate_pending: usize,
    /// De-escalate one step only when total pending tuples are at or below
    /// this level (must be < `escalate_pending` for a real hysteresis band).
    pub deescalate_pending: usize,
    /// Escalate when the fraction of the last cadence window spent above
    /// the governor watermark reaches this share.
    pub escalate_share: f64,
    /// De-escalate only when the window overload share is at or below this.
    pub deescalate_share: f64,
    /// Per-unit queue capacity the governor applies while in a bounded mode
    /// (DropTail/QosShed); must be ≥ 1 when enabled.
    pub capacity: usize,
    /// Pending-tuple watermark the governor measures its window overload
    /// share against (and that arms QosShed while escalated).
    pub watermark: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            enabled: false,
            cadence: Nanos::from_millis(50),
            min_dwell: Nanos::from_millis(200),
            escalate_pending: 0,
            deescalate_pending: 0,
            escalate_share: 0.5,
            deescalate_share: 0.1,
            capacity: 0,
            watermark: 0,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduling granularity.
    pub level: SchedulingLevel,
    /// Priority strategy for §7 shared-operator groups (ignored when the
    /// plan declares no sharing).
    pub sharing: SharingStrategy,
    /// Charge `ops_counted × sched_op_cost` of virtual time per scheduling
    /// point (§9.2's accounting). Off by default: the policy-comparison
    /// figures (5–12) treat scheduling as free, as the paper does.
    pub charge_overhead: bool,
    /// Cost of one priority computation/comparison; `None` means "the cost
    /// of the cheapest operator in the query plans" (§9.2).
    pub sched_op_cost: Option<Nanos>,
    /// Total source arrivals to inject (summed over all streams).
    pub max_arrivals: u64,
    /// Keep processing queued work after the last arrival.
    pub drain: bool,
    /// Master seed for attribute values and selectivity coins.
    pub seed: u64,
    /// Collect a per-window QoS time series with this window width
    /// (`None` = off). Useful for visualizing burst dynamics.
    pub sample_window: Option<Nanos>,
    /// Per-execution operator-cost jitter: each execution's cost is scaled
    /// by a deterministic pseudo-random factor in `[1−j, 1+j]` (a pure
    /// function of tuple/operator/seed, so still policy-independent).
    /// 0 = the paper's deterministic costs.
    pub cost_jitter: f64,
    /// Bounded queues and load shedding (default: unbounded, no shedding).
    pub overload: OverloadConfig,
    /// Deterministic engine-side fault injection (default: none).
    pub faults: FaultConfig,
    /// Closed-loop admission-mode governor (default: disabled).
    pub governor: GovernorConfig,
    /// Virtual-time cadence between telemetry snapshots (default 100 ms).
    /// Only read when a run is monitored (a [`crate::MetricsSink`] with
    /// `ENABLED = true` is attached); otherwise no sampling happens at all.
    pub telemetry_cadence: Nanos,
}

impl SimConfig {
    /// Query-level, PDT sharing, no overhead charging, draining, seed 0.
    pub fn new(max_arrivals: u64) -> Self {
        SimConfig {
            level: SchedulingLevel::Query,
            sharing: SharingStrategy::Pdt,
            charge_overhead: false,
            sched_op_cost: None,
            max_arrivals,
            drain: true,
            seed: 0,
            sample_window: None,
            cost_jitter: 0.0,
            overload: OverloadConfig::default(),
            faults: FaultConfig::default(),
            governor: GovernorConfig::default(),
            telemetry_cadence: Nanos::from_millis(100),
        }
    }

    /// Bound every unit queue at `capacity` tuples under `mode`.
    pub fn with_admission(mut self, mode: AdmissionMode, capacity: usize) -> Self {
        self.overload.mode = mode;
        self.overload.capacity = capacity;
        self
    }

    /// Set the global pending-tuple watermark (overload accounting starts,
    /// and QoS shedding arms, at this total load).
    pub fn with_watermark(mut self, watermark: usize) -> Self {
        self.overload.watermark = watermark;
        self
    }

    /// Enable persistent per-operator cost misestimation (fraction in
    /// [0, 1)), drawn deterministically from `fault_seed`.
    pub fn with_cost_miscalibration(mut self, m: f64, fault_seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&m),
            "miscalibration must be in [0, 1), got {m}"
        );
        self.faults.cost_miscalibration = m;
        self.faults.seed = fault_seed;
        self
    }

    /// Enable transient operator failures: each execution fails with
    /// probability `p` (in [0, 1)), charging its cost but suppressing
    /// output; the tuple is quarantined for `cooldown` and retried up to
    /// `retries` times before being abandoned. Draws are keyed on
    /// `FaultConfig::seed` (set it via [`SimConfig::with_cost_miscalibration`]
    /// or directly).
    pub fn with_op_failures(mut self, p: f64, cooldown: Nanos, retries: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "op-failure probability must be in [0, 1), got {p}"
        );
        assert!(
            p == 0.0 || !cooldown.is_zero(),
            "op-failure cooldown must be positive when failures are enabled"
        );
        self.faults.op_failure_prob = p;
        self.faults.op_failure_cooldown = cooldown;
        self.faults.op_failure_retries = retries;
        self
    }

    /// Attach the closed-loop overload governor. `governor.enabled` must be
    /// true, its cadence and dwell positive, its capacity ≥ 1, and its
    /// hysteresis bands well-formed (escalate thresholds strictly above
    /// their de-escalate counterparts).
    pub fn with_governor(mut self, governor: GovernorConfig) -> Self {
        assert!(governor.enabled, "with_governor requires enabled = true");
        assert!(
            !governor.cadence.is_zero(),
            "governor cadence must be positive"
        );
        assert!(
            !governor.min_dwell.is_zero(),
            "governor min_dwell must be positive"
        );
        assert!(governor.capacity >= 1, "governor capacity must be >= 1");
        assert!(
            governor.escalate_pending > governor.deescalate_pending,
            "escalate_pending must exceed deescalate_pending (hysteresis band)"
        );
        assert!(
            governor.escalate_share > governor.deescalate_share,
            "escalate_share must exceed deescalate_share (hysteresis band)"
        );
        self.governor = governor;
        self
    }

    /// Enable operator-cost jitter (fraction in [0, 1)).
    pub fn with_cost_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.cost_jitter = jitter;
        self
    }

    /// Enable per-window QoS sampling.
    pub fn with_sample_window(mut self, window: Nanos) -> Self {
        self.sample_window = Some(window);
        self
    }

    /// Set the telemetry sampling cadence (virtual time; must be positive).
    pub fn with_telemetry_cadence(mut self, cadence: Nanos) -> Self {
        assert!(!cadence.is_zero(), "telemetry cadence must be positive");
        self.telemetry_cadence = cadence;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style scheduling level override.
    pub fn with_level(mut self, level: SchedulingLevel) -> Self {
        self.level = level;
        self
    }

    /// Builder-style sharing strategy override.
    pub fn with_sharing(mut self, sharing: SharingStrategy) -> Self {
        self.sharing = sharing;
        self
    }

    /// Enable §9.2 overhead charging.
    pub fn with_overhead(mut self, charge: bool) -> Self {
        self.charge_overhead = charge;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = SimConfig::new(100);
        assert_eq!(c.level, SchedulingLevel::Query);
        assert_eq!(c.sharing, SharingStrategy::Pdt);
        assert!(!c.charge_overhead);
        assert!(c.drain);
        assert_eq!(c.max_arrivals, 100);
        assert_eq!(c.overload.mode, AdmissionMode::Unbounded);
        assert_eq!(c.overload.capacity, 0);
        assert_eq!(c.overload.watermark, 0);
        assert_eq!(c.faults.cost_miscalibration, 0.0);
        assert_eq!(c.faults.op_failure_prob, 0.0);
        assert!(!c.governor.enabled);
        assert_eq!(c.telemetry_cadence, Nanos::from_millis(100));
    }

    #[test]
    fn telemetry_cadence_builder() {
        let c = SimConfig::new(1).with_telemetry_cadence(Nanos::from_millis(250));
        assert_eq!(c.telemetry_cadence, Nanos::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_telemetry_cadence_rejected() {
        let _ = SimConfig::new(1).with_telemetry_cadence(Nanos::ZERO);
    }

    #[test]
    fn overload_and_fault_builders() {
        let c = SimConfig::new(1)
            .with_admission(AdmissionMode::QosShed, 16)
            .with_watermark(200)
            .with_cost_miscalibration(0.5, 99)
            .with_op_failures(0.1, Nanos::from_millis(5), 3);
        assert_eq!(c.overload.mode, AdmissionMode::QosShed);
        assert_eq!(c.overload.capacity, 16);
        assert_eq!(c.overload.watermark, 200);
        assert_eq!(c.faults.cost_miscalibration, 0.5);
        assert_eq!(c.faults.seed, 99);
        assert_eq!(c.faults.op_failure_prob, 0.1);
        assert_eq!(c.faults.op_failure_cooldown, Nanos::from_millis(5));
        assert_eq!(c.faults.op_failure_retries, 3);
    }

    #[test]
    fn governor_builder() {
        let g = GovernorConfig {
            enabled: true,
            escalate_pending: 100,
            deescalate_pending: 20,
            capacity: 32,
            watermark: 64,
            ..GovernorConfig::default()
        };
        let c = SimConfig::new(1).with_governor(g);
        assert!(c.governor.enabled);
        assert_eq!(c.governor.escalate_pending, 100);
        assert_eq!(c.governor.capacity, 32);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn governor_rejects_inverted_band() {
        let g = GovernorConfig {
            enabled: true,
            escalate_pending: 10,
            deescalate_pending: 10,
            capacity: 32,
            ..GovernorConfig::default()
        };
        let _ = SimConfig::new(1).with_governor(g);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn governor_rejects_zero_capacity() {
        let g = GovernorConfig {
            enabled: true,
            escalate_pending: 10,
            deescalate_pending: 2,
            capacity: 0,
            ..GovernorConfig::default()
        };
        let _ = SimConfig::new(1).with_governor(g);
    }

    #[test]
    fn builders() {
        let c = SimConfig::new(1)
            .with_seed(9)
            .with_level(SchedulingLevel::Operator)
            .with_sharing(SharingStrategy::Max)
            .with_overhead(true);
        assert_eq!(c.seed, 9);
        assert_eq!(c.level, SchedulingLevel::Operator);
        assert_eq!(c.sharing, SharingStrategy::Max);
        assert!(c.charge_overhead);
    }
}
