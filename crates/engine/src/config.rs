//! Simulation configuration.

use hcq_common::Nanos;
use hcq_core::SharingStrategy;

/// Where scheduling points fall (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingLevel {
    /// Non-preemptive: a scheduling point occurs when a *query* finishes a
    /// tuple; execution pipelines whole leaf-to-root segments. This is the
    /// level every §9 experiment uses.
    Query,
    /// Preemptive: a scheduling point after every *operator* execution; each
    /// operator has its own queue and is a schedulable unit. Supported for
    /// join-free, sharing-free workloads.
    Operator,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduling granularity.
    pub level: SchedulingLevel,
    /// Priority strategy for §7 shared-operator groups (ignored when the
    /// plan declares no sharing).
    pub sharing: SharingStrategy,
    /// Charge `ops_counted × sched_op_cost` of virtual time per scheduling
    /// point (§9.2's accounting). Off by default: the policy-comparison
    /// figures (5–12) treat scheduling as free, as the paper does.
    pub charge_overhead: bool,
    /// Cost of one priority computation/comparison; `None` means "the cost
    /// of the cheapest operator in the query plans" (§9.2).
    pub sched_op_cost: Option<Nanos>,
    /// Total source arrivals to inject (summed over all streams).
    pub max_arrivals: u64,
    /// Keep processing queued work after the last arrival.
    pub drain: bool,
    /// Master seed for attribute values and selectivity coins.
    pub seed: u64,
    /// Collect a per-window QoS time series with this window width
    /// (`None` = off). Useful for visualizing burst dynamics.
    pub sample_window: Option<Nanos>,
    /// Per-execution operator-cost jitter: each execution's cost is scaled
    /// by a deterministic pseudo-random factor in `[1−j, 1+j]` (a pure
    /// function of tuple/operator/seed, so still policy-independent).
    /// 0 = the paper's deterministic costs.
    pub cost_jitter: f64,
}

impl SimConfig {
    /// Query-level, PDT sharing, no overhead charging, draining, seed 0.
    pub fn new(max_arrivals: u64) -> Self {
        SimConfig {
            level: SchedulingLevel::Query,
            sharing: SharingStrategy::Pdt,
            charge_overhead: false,
            sched_op_cost: None,
            max_arrivals,
            drain: true,
            seed: 0,
            sample_window: None,
            cost_jitter: 0.0,
        }
    }

    /// Enable operator-cost jitter (fraction in [0, 1)).
    pub fn with_cost_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.cost_jitter = jitter;
        self
    }

    /// Enable per-window QoS sampling.
    pub fn with_sample_window(mut self, window: Nanos) -> Self {
        self.sample_window = Some(window);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style scheduling level override.
    pub fn with_level(mut self, level: SchedulingLevel) -> Self {
        self.level = level;
        self
    }

    /// Builder-style sharing strategy override.
    pub fn with_sharing(mut self, sharing: SharingStrategy) -> Self {
        self.sharing = sharing;
        self
    }

    /// Enable §9.2 overhead charging.
    pub fn with_overhead(mut self, charge: bool) -> Self {
        self.charge_overhead = charge;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = SimConfig::new(100);
        assert_eq!(c.level, SchedulingLevel::Query);
        assert_eq!(c.sharing, SharingStrategy::Pdt);
        assert!(!c.charge_overhead);
        assert!(c.drain);
        assert_eq!(c.max_arrivals, 100);
    }

    #[test]
    fn builders() {
        let c = SimConfig::new(1)
            .with_seed(9)
            .with_level(SchedulingLevel::Operator)
            .with_sharing(SharingStrategy::Max)
            .with_overhead(true);
        assert_eq!(c.seed, 9);
        assert_eq!(c.level, SchedulingLevel::Operator);
        assert_eq!(c.sharing, SharingStrategy::Max);
        assert!(c.charge_overhead);
    }
}
