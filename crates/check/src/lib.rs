//! Deterministic fuzzing and invariant checking for the hcq stack.
//!
//! The simulator's headline claim is *determinism*: every policy faces the
//! identical workload realization, byte-for-byte, at any parallelism. That
//! claim — and the numeric edge cases the scheduling formulas are exposed
//! to (zero costs, zero/NaN selectivities, degenerate priority domains) —
//! deserve an adversary. This crate is that adversary:
//!
//! * [`scenario`] — seeded random workloads: query plans with extreme
//!   costs/selectivities, bursty and stalling sources, every admission
//!   mode, engine-side fault injection. Pure functions of
//!   `(seed, case index)`, serialized as `hcq-fuzz-v1` JSON artifacts.
//! * [`invariants`] — the machine-checkable suite run under **every**
//!   policy: tuple conservation per admission mode, monotone virtual time,
//!   QoS sanity, virtual-time accounting, bit-exact determinism,
//!   instrumentation inertness, telemetry reconciliation.
//! * [`policyfuzz`] — drives policies directly with statics that plan
//!   validation would reject (exact-zero times, NaN selectivity) and holds
//!   clustered BSD to its §6.2.1 `ε = (Φ_max/Φ_min)^(1/m)` approximation
//!   bound against the exact BSD argmax.
//! * [`estimator`] — differential oracle for the online statistics
//!   estimators: a from-scratch closed-form EWMA and incremental-mean
//!   window reference checked sample-by-sample against production, plus a
//!   seeded-miscalibration convergence property.
//! * [`incremental`] — differential sequences over the large-q maintenance
//!   API (statics updates, unit add/retire, sheds): after any mutation
//!   stream, the incrementally-maintained clustered BSD must drain
//!   byte-identically to a from-scratch rebuild of the same state.
//! * [`shrink`] — greedy minimization of failing scenarios to replayable
//!   `fuzz-repro-<seed>-<case>.json` artifacts.
//! * [`runner`] — the sweep: a jobs-invariant parallel map whose digest
//!   folds every per-policy report fingerprint, so one string comparison
//!   certifies byte-determinism across `--jobs` counts.
//!
//! The CLI entry point is `repro fuzz --seed N --cases K`; failing cases
//! land as artifacts that `crates/check/tests/replay.rs` re-runs as
//! regression tests forever after.

pub mod estimator;
pub mod incremental;
pub mod invariants;
pub mod json;
pub mod policyfuzz;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use estimator::fuzz_estimators;
pub use incremental::fuzz_incremental;
pub use invariants::{check_scenario, check_scenario_full, fingerprint, ScenarioCheck, Violation};
pub use json::Json;
pub use policyfuzz::fuzz_policies;
pub use runner::{replay, run_fuzz, write_artifact, CaseResult, FuzzConfig, FuzzOutcome};
pub use scenario::{
    AdaptPlan, AdmissionPlan, DriftStepPlan, FaultPlan, OpSpec, QuerySpec, Scenario, SourceKind,
};
pub use shrink::{artifact_name, parse_artifact, render_artifact, shrink};
