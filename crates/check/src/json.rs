//! Minimal JSON reader/writer for fuzz artifacts.
//!
//! The workspace deliberately carries no serialization dependency, so the
//! artifact format (`hcq-fuzz-v1`, see [`crate::scenario`]) is handled by
//! this small recursive-descent parser and a deterministic writer. Objects
//! preserve insertion order (a `Vec` of pairs, not a map), numbers
//! round-trip through Rust's shortest-representation `{:?}` formatting, and
//! the writer emits no insignificant whitespace — so serializing the same
//! value twice yields byte-identical output.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; artifact integers stay exact up to
    /// 2^53, far beyond any scenario field).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the full input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` prints the shortest string that round-trips.
                    write!(f, "{n:?}")
                } else {
                    // JSON has no Inf/NaN literal; encode as a string the
                    // parser will reject, forcing the writer-side bug to
                    // surface instead of silently corrupting an artifact.
                    write!(f, "\"<non-finite:{n}>\"")
                }
            }
            Json::Str(s) => write_string(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (artifacts are ASCII in practice,
                // but the parser must not split multibyte sequences).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = r#"{"a": 1, "b": [true, null, "x\n\"y"], "c": {"d": 0.25}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(0.25)
        );
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
        // Deterministic writer: printing twice is byte-identical.
        assert_eq!(printed, v.to_string());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1e-12,
            123456789.125,
            2f64.powi(-40),
            0.3333333333333333,
        ] {
            let printed = Json::Num(x).to_string();
            let back = Json::parse(&printed).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} reparsed as {back}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
