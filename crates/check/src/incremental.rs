//! Differential fuzzing of incremental clustered-BSD maintenance.
//!
//! The large-q scheduler core keeps its clusters **incrementally**: a
//! statics change re-buckets one unit against the frozen `Φ` domain, an
//! added unit joins an existing cluster, a retirement marks a slot — no
//! full priority-domain rebuild ever happens. The correctness claim is that
//! none of this is observable: after *any* mutation sequence, the policy
//! must behave byte-identically to a from-scratch reconstruction of the
//! same logical state
//! ([`ClusteredBsdPolicy::rebuild_reference`]).
//!
//! This module fuzzes that claim. Each `(seed, case)` derives a mutation
//! sequence — interleaved enqueues (single and fanned-out), selects, sheds,
//! statics updates, unit additions and retirements — applies it to an
//! incremental policy, rebuilds the reference, and drains both side by
//! side. Every [`Selection`] must match exactly: units, charged ops, and
//! the full [`hcq_core::SchedStats`] itemization. A mismatch is reported as
//! an `incremental-equivalence` violation, after **shrinking** the mutation
//! sequence to the shortest failing prefix so the artifact names the
//! smallest reproduction.

use std::collections::VecDeque;

use hcq_common::{det, Nanos, TupleId};
use hcq_core::{ClusterConfig, ClusteredBsdPolicy, Policy, QueueView, UnitId, UnitStatics};

use crate::invariants::Violation;
use crate::policyfuzz::degenerate_units;

/// Hard cap on units after growth, keeping cases tiny and fast to shrink.
const MAX_UNITS: usize = 12;

/// Queue state shared by the incremental policy and its rebuilt reference.
/// Cloneable so the reference drains an identical copy.
#[derive(Clone, Default)]
struct DiffQueues {
    queues: Vec<VecDeque<(TupleId, Nanos)>>,
    nonempty: Vec<UnitId>,
}

impl DiffQueues {
    fn new(n: usize) -> Self {
        DiffQueues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            nonempty: Vec::new(),
        }
    }

    fn refresh(&mut self) {
        self.nonempty = (0..self.queues.len() as UnitId)
            .filter(|&u| !self.queues[u as usize].is_empty())
            .collect();
    }

    fn add_unit(&mut self) {
        self.queues.push(VecDeque::new());
    }

    fn push(&mut self, unit: UnitId, tuple: TupleId, arrival: Nanos) {
        self.queues[unit as usize].push_back((tuple, arrival));
        self.refresh();
    }

    fn pop(&mut self, unit: UnitId) -> Option<(TupleId, Nanos)> {
        let head = self.queues[unit as usize].pop_front();
        self.refresh();
        head
    }

    fn pop_back(&mut self, unit: UnitId) -> Option<(TupleId, Nanos)> {
        let tail = self.queues[unit as usize].pop_back();
        self.refresh();
        tail
    }

    fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

impl QueueView for DiffQueues {
    fn len(&self, unit: UnitId) -> usize {
        self.queues[unit as usize].len()
    }

    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.queues[unit as usize].front().map(|&(_, a)| a)
    }

    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

/// The clustered variants under differential test.
fn variants(m: usize) -> Vec<(String, ClusterConfig)> {
    let log = ClusterConfig::logarithmic(m);
    let scan = ClusterConfig {
        use_fagin: false,
        batch: false,
        ..log
    };
    vec![
        (format!("C-BSD-log{m}"), log),
        (format!("C-BSD-logscan{m}"), scan),
        (format!("C-BSD-uni{m}"), ClusterConfig::uniform(m)),
    ]
}

/// Fresh statics for growth/update ops: reuse the degenerate generator so
/// NaN/zero corners also flow through the *incremental* paths.
fn gen_statics(h: u64) -> UnitStatics {
    let pool = degenerate_units(h, h ^ 0x5eed);
    pool[(det::mix2(h, 77) % pool.len() as u64) as usize]
}

/// Apply `steps` mutation ops, then drain the incremental policy against
/// its rebuilt reference. Returns the first divergence as a detail string.
fn run_sequence(seed: u64, case: u64, cfg: ClusterConfig, steps: u64) -> Option<String> {
    let base = det::mix3(det::splitmix64(seed ^ 0x1ac4), case, 0x51de);
    let units = degenerate_units(seed, case ^ 0xc105);
    let mut policy = ClusteredBsdPolicy::new(cfg);
    policy.on_register(&units);
    let mut queues = DiffQueues::new(units.len());
    let mut retired = vec![false; units.len()];
    let mut now = Nanos::ZERO;
    let mut next_tuple = 0u64;
    let gap = det::unit_range(det::mix2(base, 1), 1, 500_000);

    for step in 0..steps {
        let h = det::mix2(base, 1000 + step);
        let n = retired.len();
        let u = (det::mix2(h, 2) % n as u64) as UnitId;
        match det::unit_range(det::mix2(h, 1), 0, 6) {
            0 => {
                // Single enqueue.
                if !retired[u as usize] {
                    let t = TupleId::new(next_tuple);
                    next_tuple += 1;
                    queues.push(u, t, now);
                    policy.on_enqueue(u, t, now, now);
                }
            }
            1 => {
                // Fan-out: one source tuple copied to every live unit, the
                // shape clustered batching collapses.
                let t = TupleId::new(next_tuple);
                next_tuple += 1;
                for v in 0..n as UnitId {
                    if !retired[v as usize] {
                        queues.push(v, t, now);
                        policy.on_enqueue(v, t, now, now);
                    }
                }
            }
            2 => {
                // Scheduling point mid-sequence.
                if let Some(sel) = policy.select(&queues, now) {
                    for &su in sel.units.as_slice() {
                        queues.pop(su);
                    }
                }
            }
            3 => {
                // Statics update (may re-bucket and migrate entries).
                policy.update_unit_statics(u, &gen_statics(det::mix2(h, 3)));
            }
            4 => {
                // Membership growth.
                if n < MAX_UNITS {
                    let added = policy.add_unit(gen_statics(det::mix2(h, 4)));
                    assert_eq!(added as usize, n, "dense unit ids");
                    queues.add_unit();
                    retired.push(false);
                }
            }
            5 => {
                // Shed the unit's tail tuple, engine-style.
                if let Some((t, _)) = queues.pop_back(u) {
                    policy.on_shed(u, t);
                }
            }
            _ => {
                // Retirement of a backlog-free unit.
                if !retired[u as usize] && queues.len(u) == 0 {
                    policy.retire_unit(u);
                    retired[u as usize] = true;
                }
            }
        }
        now += Nanos::from_nanos(1 + det::mix2(h, 9) % gap);
    }

    // Differential drain: the rebuilt reference must replay byte-identically.
    let mut reference = policy.rebuild_reference();
    let mut ref_queues = queues.clone();
    let budget = 4 * (queues.pending() + 1);
    for round in 0..budget {
        let a = policy.select(&queues, now);
        let b = reference.select(&ref_queues, now);
        match (&a, &b) {
            (None, None) => {
                if queues.pending() > 0 {
                    return Some(format!(
                        "both wedged with {} tuples pending after {steps} ops",
                        queues.pending()
                    ));
                }
                return None;
            }
            (Some(x), Some(y)) => {
                if x.units != y.units || x.ops_counted != y.ops_counted || x.stats != y.stats {
                    return Some(format!(
                        "round {round} after {steps} ops: incremental {:?} (ops {}, stats {:?}) \
                         vs rebuilt {:?} (ops {}, stats {:?})",
                        x.units, x.ops_counted, x.stats, y.units, y.ops_counted, y.stats
                    ));
                }
                for &su in x.units.as_slice() {
                    if queues.pop(su).is_none() || ref_queues.pop(su).is_none() {
                        return Some(format!(
                            "round {round}: selected unit {su} with empty queue"
                        ));
                    }
                }
            }
            _ => {
                return Some(format!(
                    "round {round} after {steps} ops: incremental selected {:?}, rebuilt {:?}",
                    a.as_ref().map(|s| s.units.as_slice().to_vec()),
                    b.as_ref().map(|s| s.units.as_slice().to_vec()),
                ));
            }
        }
        now += Nanos::from_nanos(1);
    }
    (queues.pending() > 0).then(|| "drain exceeded budget".to_string())
}

/// Fuzz one `(seed, case)` of incremental mutations through every clustered
/// variant, shrinking failures to the shortest failing op prefix.
pub fn fuzz_incremental(seed: u64, case: u64) -> Vec<Violation> {
    let base = det::mix3(det::splitmix64(seed ^ 0x1ac4), case, 0x51de);
    let m = det::unit_range(det::mix2(base, 5), 1, 6) as usize;
    let steps = det::unit_range(det::mix2(base, 6), 4, 40);
    let mut violations = Vec::new();
    for (name, cfg) in variants(m) {
        if let Some(detail) = run_sequence(seed, case, cfg, steps) {
            // Shrink: the shortest prefix of the same op stream that still
            // diverges (sequences are deterministic in (seed, case, len)).
            let minimal = (0..steps)
                .find(|&len| run_sequence(seed, case, cfg, len).is_some())
                .unwrap_or(steps);
            let detail_min = run_sequence(seed, case, cfg, minimal).unwrap_or(detail);
            violations.push(Violation {
                policy: name,
                invariant: "incremental-equivalence",
                detail: format!("minimal prefix {minimal}/{steps} ops: {detail_min}"),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_maintenance_matches_rebuild_over_many_cases() {
        for case in 0..48 {
            let violations = fuzz_incremental(7, case);
            assert!(
                violations.is_empty(),
                "case {case} diverged:\n{}",
                violations
                    .iter()
                    .map(|v| format!("  {v}\n"))
                    .collect::<String>()
            );
        }
    }

    #[test]
    fn sequences_are_deterministic() {
        // The same (seed, case) must replay the same op stream: run twice
        // and require identical (empty) outcomes — the replay contract the
        // artifact format relies on.
        for case in 0..8 {
            let a = format!("{:?}", fuzz_incremental(11, case));
            let b = format!("{:?}", fuzz_incremental(11, case));
            assert_eq!(a, b);
        }
    }
}
