//! Policy-level fuzzing over degenerate unit statics.
//!
//! The engine-level suite ([`crate::invariants`]) can only reach statistics
//! that survive plan validation (costs ≥ 1 ns, selectivities in `(0, 1]`).
//! This module drives every policy directly through the [`Policy`] trait
//! with the statics the validation layer is *protecting* them from — exact
//! zero costs and ideal times, zero selectivity, NaN selectivity — exactly
//! the corners the `MIN_TIME_NS` clamp, the NaN-last [`PriorityKey`] order,
//! and the degenerate-domain clustering guards exist for.
//!
//! Checked per scenario and policy:
//!
//! * `no-wedge` — `select` returns a selection while work is pending;
//! * `valid-selection` — every selected unit exists and has pending work;
//! * `termination` — a full drain finishes within a linear op budget;
//! * `epsilon-bound` — for logarithmically clustered BSD on an all-positive
//!   `Φ` domain, the executed choice is within `ε = (Φ_max/Φ_min)^(1/m)` of
//!   the exact BSD maximum (§6.2.1's approximation guarantee).

use std::collections::VecDeque;

use hcq_common::{det, Nanos, TupleId};
use hcq_core::{
    ClusterConfig, ClusteredBsdPolicy, Policy, PolicyKind, QueueView, UnitId, UnitStatics,
};

use crate::invariants::Violation;

/// Engine-style queue state for hand-driven policies: one FIFO per unit,
/// every arrival copied to every unit (as a shared stream fan-out would).
struct FuzzQueues {
    queues: Vec<VecDeque<(TupleId, Nanos)>>,
    nonempty: Vec<UnitId>,
}

impl FuzzQueues {
    fn new(n: usize) -> Self {
        FuzzQueues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            nonempty: Vec::new(),
        }
    }

    fn refresh(&mut self) {
        self.nonempty = (0..self.queues.len() as UnitId)
            .filter(|&u| !self.queues[u as usize].is_empty())
            .collect();
    }

    fn push(&mut self, unit: UnitId, tuple: TupleId, arrival: Nanos) {
        self.queues[unit as usize].push_back((tuple, arrival));
        self.refresh();
    }

    fn pop(&mut self, unit: UnitId) -> Option<(TupleId, Nanos)> {
        let head = self.queues[unit as usize].pop_front();
        self.refresh();
        head
    }

    fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

impl QueueView for FuzzQueues {
    fn len(&self, unit: UnitId) -> usize {
        self.queues[unit as usize].len()
    }

    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.queues[unit as usize].front().map(|&(_, a)| a)
    }

    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

/// Generate a deliberately degenerate statics vector: NaN and zero
/// selectivities, zero costs and ideal times, and ordinary units mixed in
/// so comparisons against healthy priorities happen too.
pub fn degenerate_units(seed: u64, case: u64) -> Vec<UnitStatics> {
    let base = det::mix3(det::splitmix64(seed ^ 0x7066_757a_7a21), case, 0xdead);
    let n = det::unit_range(det::mix2(base, 1), 1, 8) as usize;
    (0..n)
        .map(|i| {
            let h = det::mix2(base, 100 + i as u64);
            let sel_r = det::unit_f64(det::mix2(h, 1));
            let cost = gen_nanos(det::mix2(h, 2));
            let ideal = gen_nanos(det::mix2(h, 3));
            let mut u = UnitStatics::new(
                if sel_r < 0.25 {
                    0.0
                } else if sel_r < 0.4 {
                    1e-9
                } else {
                    det::unit_f64(det::mix2(h, 4)).max(1e-3)
                },
                cost,
                ideal,
            );
            if sel_r < 0.1 {
                // NaN statics can only come from outside the constructors
                // (external embeddings mutating the public fields) — emulate
                // exactly that.
                u.selectivity = f64::NAN;
            }
            u
        })
        .collect()
}

fn gen_nanos(h: u64) -> Nanos {
    let r = det::unit_f64(det::mix2(h, 9));
    if r < 0.25 {
        Nanos::ZERO
    } else if r < 0.5 {
        Nanos::from_nanos(1)
    } else {
        Nanos::from_nanos(det::unit_range(det::mix2(h, 10), 1_000, 5_000_000))
    }
}

/// The policy roster for the degenerate-statics drill: the paper's seven
/// plus clustered BSD in logarithmic/uniform and scan/Fagin variants.
fn roster(m: usize) -> Vec<(String, Box<dyn Policy>, bool)> {
    let mut r: Vec<(String, Box<dyn Policy>, bool)> = PolicyKind::ALL
        .iter()
        .map(|k| (k.name().to_string(), k.build(), false))
        .collect();
    r.push((
        format!("C-BSD-log{m}"),
        Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(m))),
        true,
    ));
    let scan = ClusterConfig {
        use_fagin: false,
        batch: false,
        ..ClusterConfig::logarithmic(m)
    };
    r.push((
        format!("C-BSD-logscan{m}"),
        Box::new(ClusteredBsdPolicy::new(scan)),
        true,
    ));
    r.push((
        format!("C-BSD-uni{m}"),
        Box::new(ClusteredBsdPolicy::new(ClusterConfig::uniform(m))),
        false,
    ));
    r
}

/// Fuzz one `(seed, case)` of degenerate statics through every policy.
pub fn fuzz_policies(seed: u64, case: u64) -> Vec<Violation> {
    let base = det::mix3(det::splitmix64(seed ^ 0x7066_757a_7a21), case, 0xbeef);
    let units = degenerate_units(seed, case);
    let arrivals = det::unit_range(det::mix2(base, 2), 1, 24);
    let gap = det::unit_range(det::mix2(base, 3), 1, 1_000_000);
    let m = det::unit_range(det::mix2(base, 4), 1, 6) as usize;
    let mut violations = Vec::new();
    for (name, mut policy, check_eps) in roster(m) {
        drain_with_checks(
            &name,
            policy.as_mut(),
            &units,
            arrivals,
            gap,
            m,
            check_eps,
            &mut violations,
        );
    }
    violations
}

/// ε-bound context for one drain: the §6.2.1 guarantee applies only when
/// the sanitized `Φ` domain is entirely positive and finite.
fn epsilon(units: &[UnitStatics], m: usize) -> Option<f64> {
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for u in units {
        let p = u.bsd_static();
        if !p.is_finite() || p <= 0.0 {
            return None;
        }
        lo = lo.min(p);
        hi = hi.max(p);
    }
    let eps = (hi / lo).powf(1.0 / m as f64);
    eps.is_finite().then_some(eps)
}

#[allow(clippy::too_many_arguments)]
fn drain_with_checks(
    name: &str,
    policy: &mut dyn Policy,
    units: &[UnitStatics],
    arrivals: u64,
    gap: u64,
    m: usize,
    check_eps: bool,
    violations: &mut Vec<Violation>,
) {
    let fail = |violations: &mut Vec<Violation>, invariant: &'static str, detail: String| {
        violations.push(Violation {
            policy: name.to_string(),
            invariant,
            detail,
        });
    };
    policy.on_register(units);
    let mut queues = FuzzQueues::new(units.len());
    let mut now = Nanos::ZERO;
    for t in 0..arrivals {
        let arrival = Nanos::from_nanos(t * gap);
        now = arrival;
        // Engine-style fan-out: one source tuple, one copy per unit.
        for u in 0..units.len() as UnitId {
            queues.push(u, TupleId::new(t), arrival);
            policy.on_enqueue(u, TupleId::new(t), arrival, now);
        }
    }
    let eps = check_eps.then(|| epsilon(units, m)).flatten();
    let budget = 4 * arrivals as usize * units.len() + 16;
    let mut steps = 0;
    while queues.pending() > 0 {
        steps += 1;
        if steps > budget {
            fail(
                violations,
                "termination",
                format!(
                    "drain exceeded {budget} selects with {} tuples still pending",
                    queues.pending()
                ),
            );
            return;
        }
        let Some(selection) = policy.select(&queues, now) else {
            fail(
                violations,
                "no-wedge",
                format!(
                    "select returned None with {} tuples pending",
                    queues.pending()
                ),
            );
            return;
        };
        if selection.units.as_slice().is_empty() {
            fail(violations, "valid-selection", "empty selection".into());
            return;
        }
        if let Some(eps) = eps {
            // Exact BSD maximum over per-unit heads, before popping.
            let exact_best = queues
                .nonempty()
                .iter()
                .map(|&u| {
                    let w = now
                        .saturating_since(queues.head_arrival(u).unwrap())
                        .as_nanos() as f64;
                    units[u as usize].bsd_static() * w
                })
                .fold(0.0f64, f64::max);
            let executed = selection
                .units
                .as_slice()
                .iter()
                .map(|&u| {
                    let w = now
                        .saturating_since(queues.head_arrival(u).unwrap())
                        .as_nanos() as f64;
                    units[u as usize].bsd_static() * w
                })
                .fold(0.0f64, f64::max);
            if executed * eps * (1.0 + 1e-9) < exact_best {
                fail(
                    violations,
                    "epsilon-bound",
                    format!(
                        "executed priority {executed:e} more than ε = {eps} below exact best {exact_best:e}"
                    ),
                );
            }
        }
        for &u in selection.units.as_slice() {
            if u as usize >= units.len() {
                fail(violations, "valid-selection", format!("unknown unit {u}"));
                return;
            }
            if queues.pop(u).is_none() {
                fail(
                    violations,
                    "valid-selection",
                    format!("selected unit {u} has an empty queue"),
                );
                return;
            }
        }
        now += Nanos::from_nanos(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_statics_are_generated_deterministically() {
        // Compare through Debug: NaN selectivities are intentional, and
        // NaN != NaN would fail a direct PartialEq comparison.
        assert_eq!(
            format!("{:?}", degenerate_units(5, 9)),
            format!("{:?}", degenerate_units(5, 9))
        );
        // The corners are actually sampled over a modest case range.
        let mut saw_nan = false;
        let mut saw_zero_cost = false;
        let mut saw_zero_sel = false;
        for case in 0..64 {
            for u in degenerate_units(0, case) {
                saw_nan |= u.selectivity.is_nan();
                saw_zero_cost |= u.avg_cost_ns == hcq_core::MIN_TIME_NS;
                saw_zero_sel |= u.selectivity == 0.0;
            }
        }
        assert!(saw_nan && saw_zero_cost && saw_zero_sel);
    }

    #[test]
    fn all_policies_survive_degenerate_statics() {
        for case in 0..32 {
            let violations = fuzz_policies(2, case);
            assert!(
                violations.is_empty(),
                "case {case} violated:\n{}",
                violations
                    .iter()
                    .map(|v| format!("  {v}\n"))
                    .collect::<String>()
            );
        }
    }
}
