//! Seeded random scenarios and the `hcq-fuzz-v2` artifact format.
//!
//! A [`Scenario`] is a complete, self-contained description of one fuzz
//! case: the query plans (operator kinds, costs, selectivities), the arrival
//! process and its fault schedule, the admission mode, and every simulator
//! knob the invariant suite varies. Scenarios are generated as a pure
//! function of `(fuzz seed, case index)` via the workspace's SplitMix64
//! mixers — no RNG state, so any case can be regenerated in isolation — and
//! serialize to a small JSON document so a failing case shrinks to an
//! artifact that a regression test replays byte-for-byte.
//!
//! Generation deliberately over-samples the degenerate corners the
//! satellite bugfixes guard: near-zero (1 ns) operator costs, selectivities
//! at both extremes of the plan layer's `(0, 1]` validity interval, single
//! -query plans (collapsing the clustered-BSD priority domain to a point),
//! bursty/stalling sources, and bounded queues under every admission mode.
//! v2 adds the robustness dimensions: the closed-loop overload governor,
//! per-query deadlines (including the degenerate deadline-0 corner),
//! transient operator failures, and source disconnect/reconnect schedules.
//! v1 artifacts parse with all of those off, so historical regression
//! artifacts keep replaying unchanged. The adaptive dimensions — the online
//! statistics estimator (including its observe-only probe form), the
//! drifting-statics fault schedule, and the governor's policy-switching
//! meta-scheduler — are optional keys under the same schema: artifacts
//! written before they existed parse with them off.
//! Exact-zero costs and NaN statics cannot pass plan validation, so those
//! live in the policy-level fuzzer ([`crate::policyfuzz`]) instead.

use hcq_common::{det, Nanos, Result, StreamId};
use hcq_engine::{AdaptConfig, AdaptMode, AdmissionMode, DriftStep, GovernorConfig, SimConfig};
use hcq_plan::{GlobalPlan, QueryBuilder};
use hcq_streams::{
    ArrivalSource, ConstantSource, DisconnectSource, DisconnectSpec, FaultSpec, FaultySource,
    OnOffSource, PoissonSource,
};

use crate::json::Json;

/// Artifact schema identifier (current version).
pub const SCHEMA: &str = "hcq-fuzz-v2";

/// The original schema. v1 artifacts lack the governor, deadline,
/// op-failure, and disconnect dimensions; they parse with those disabled,
/// so historical regression artifacts keep replaying byte-for-byte.
pub const SCHEMA_V1: &str = "hcq-fuzz-v1";

/// One operator in a generated query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSpec {
    /// Operator kind: 0 = select, 1 = stored join, 2 = project, 3 = map.
    pub kind: u8,
    /// Per-tuple cost in nanoseconds (≥ 1; the plan layer rejects 0).
    pub cost_ns: u64,
    /// Selectivity in `(0, 1]` (ignored for project, which passes through).
    pub sel: f64,
}

/// One single-stream query (a chain of unary operators).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuerySpec {
    /// Leaf-to-root operator chain.
    pub ops: Vec<OpSpec>,
}

/// Arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Deterministic constant gaps.
    Constant,
    /// Memoryless Poisson arrivals.
    Poisson,
    /// Markov-modulated ON/OFF bursts (the paper's traffic class).
    OnOff,
}

/// Source-side fault schedule (all-zero = no faults).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-arrival probability of opening a burst.
    pub burst_prob: f64,
    /// Extra arrivals injected per burst.
    pub burst_len: u32,
    /// Burst arrivals spread over this window (ns).
    pub burst_spread_ns: u64,
    /// Per-arrival probability of a source stall.
    pub stall_prob: f64,
    /// Stall length (ns).
    pub stall_len_ns: u64,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.burst_prob == 0.0 && self.stall_prob == 0.0
    }
}

/// Admission policy for the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPlan {
    /// 0 = unbounded, 1 = drop-tail, 2 = QoS shed.
    pub mode: u8,
    /// Per-unit queue capacity (ignored when unbounded).
    pub capacity: usize,
    /// Global pending watermark (0 = disabled).
    pub watermark: usize,
}

impl AdmissionPlan {
    /// The engine-side admission mode.
    pub fn mode(&self) -> AdmissionMode {
        match self.mode {
            1 => AdmissionMode::DropTail,
            2 => AdmissionMode::QosShed,
            _ => AdmissionMode::Unbounded,
        }
    }
}

/// Closed-loop governor knobs (all-zero = disabled). Hysteresis shares stay
/// at the engine defaults; the fuzzer varies the structural knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorPlan {
    /// Master switch.
    pub enabled: bool,
    /// Decision cadence (ns).
    pub cadence_ns: u64,
    /// Minimum dwell between transitions (ns).
    pub min_dwell_ns: u64,
    /// Escalate at this total pending depth.
    pub escalate_pending: usize,
    /// De-escalate at or below this depth.
    pub deescalate_pending: usize,
    /// Per-unit capacity applied in bounded modes.
    pub capacity: usize,
    /// Pending watermark for the overload-share signal.
    pub watermark: usize,
    /// Meta-scheduler: switch the scheduling policy itself under sustained
    /// overload (hysteresis shares stay at the engine defaults).
    pub switch_policy: bool,
}

/// Transient operator-failure schedule (all-zero = disabled).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpFailurePlan {
    /// Per-execution failure probability.
    pub prob: f64,
    /// Quarantine cooldown (ns).
    pub cooldown_ns: u64,
    /// Retries after the first failure.
    pub retries: u32,
}

/// Online statistics adaptation knobs (disabled by default; artifacts
/// written before the dimension existed parse with it off).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdaptPlan {
    /// Master switch.
    pub enabled: bool,
    /// 0 = EWMA over window means, 1 = tumbling-window means.
    pub mode: u8,
    /// EWMA smoothing factor in (0, 1].
    pub alpha: f64,
    /// Publication cadence (ns).
    pub cadence_ns: u64,
    /// Minimum fresh samples per published window.
    pub min_observations: u64,
    /// False = observe-only probe (estimates harvested, decisions
    /// untouched) — the engine must then behave bit-identically to a
    /// non-adaptive run, which the invariant suite checks.
    pub publish: bool,
}

/// One step of the piecewise-constant drifting-statics schedule: from
/// `at_ns` on, operator costs and selectivities scale by these factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStepPlan {
    /// Virtual time the step takes effect.
    pub at_ns: u64,
    /// Multiplier on every operator cost from this step on.
    pub cost_factor: f64,
    /// Multiplier on every selectivity (clamped to 1.0 by the engine).
    pub sel_factor: f64,
}

/// Source disconnect/reconnect schedule (zero prob = disabled).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DisconnectPlan {
    /// Per-base-arrival disconnect probability.
    pub prob: f64,
    /// First retry delay (ns).
    pub retry_base_ns: u64,
    /// Maximum reconnection attempts.
    pub max_retries: u32,
    /// Per-attempt reconnection probability.
    pub reconnect_prob: f64,
}

/// A complete fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// `(fuzz seed, case index)` identity this scenario was generated from
    /// (kept through shrinking so artifacts name their origin).
    pub seed: u64,
    /// Case index under `seed`.
    pub case: u64,
    /// The registered queries.
    pub queries: Vec<QuerySpec>,
    /// Mean inter-arrival gap (ns).
    pub mean_gap_ns: u64,
    /// Source arrivals to inject.
    pub arrivals: u64,
    /// Arrival process shape.
    pub source: SourceKind,
    /// Source-side fault schedule.
    pub faults: FaultPlan,
    /// Admission mode and bounds.
    pub admission: AdmissionPlan,
    /// Cluster count `m` for the clustered-BSD run.
    pub clusters: usize,
    /// Simulator master seed (selectivity coins, attribute values).
    pub sim_seed: u64,
    /// Engine-side persistent cost miscalibration (0 = calibrated).
    pub cost_miscalibration: f64,
    /// Per-execution cost jitter (0 = deterministic costs).
    pub cost_jitter: f64,
    /// Closed-loop overload governor (disabled by default; v1 artifacts).
    pub governor: GovernorPlan,
    /// Per-query response deadline applied to every query (`None` = no
    /// deadlines; `Some(0)` is valid and means "must start at arrival").
    pub deadline_ns: Option<u64>,
    /// Transient operator-failure schedule.
    pub op_failures: OpFailurePlan,
    /// Source disconnect/reconnect schedule.
    pub disconnect: DisconnectPlan,
    /// Online statistics adaptation (disabled by default).
    pub adapt: AdaptPlan,
    /// Drifting-statics schedule (empty = stationary environment).
    pub drift: Vec<DriftStepPlan>,
}

/// Pick a cost: mostly µs-scale, over-sampling the 1 ns near-zero corner.
fn gen_cost(h: u64) -> u64 {
    if det::coin(det::mix2(h, 1), 0.15) {
        1 // near-zero: the smallest cost plan validation admits
    } else {
        // Log-uniform over [1 µs, 1 ms).
        let exp = det::unit_f64(det::mix2(h, 2)) * 3.0;
        (1_000.0 * 10f64.powf(exp)) as u64
    }
}

/// Pick a selectivity in `(0, 1]`, over-sampling both extremes.
fn gen_sel(h: u64) -> f64 {
    let r = det::unit_f64(det::mix2(h, 3));
    if r < 0.2 {
        1.0
    } else if r < 0.35 {
        1e-6
    } else {
        0.05 + 0.95 * det::unit_f64(det::mix2(h, 4))
    }
}

impl Scenario {
    /// Deterministically generate case `case` of fuzz run `seed`.
    pub fn generate(seed: u64, case: u64) -> Scenario {
        let base = det::mix2(det::splitmix64(seed ^ 0x6863_715f_6675_7a7a), case);
        let n_queries = det::unit_range(det::mix2(base, 10), 1, 6) as usize;
        let mut queries = Vec::with_capacity(n_queries);
        let mut total_cost: u64 = 0;
        for q in 0..n_queries {
            let qh = det::mix2(base, 100 + q as u64);
            let n_ops = det::unit_range(det::mix2(qh, 1), 1, 4) as usize;
            let mut ops = Vec::with_capacity(n_ops);
            let mut carry = 1.0; // expected tuples reaching this operator
            for o in 0..n_ops {
                let oh = det::mix2(qh, 1_000 + o as u64);
                let kind = det::unit_range(det::mix2(oh, 5), 0, 3) as u8;
                let cost_ns = gen_cost(oh);
                let sel = if kind == 2 { 1.0 } else { gen_sel(oh) };
                total_cost += (cost_ns as f64 * carry).ceil() as u64;
                carry *= sel;
                ops.push(OpSpec { kind, cost_ns, sel });
            }
            queries.push(QuerySpec { ops });
        }
        // Calibrate the gap so utilization lands in [0.3, 1.5] — both
        // underload and sustained overload get exercised.
        let util = 0.3 + 1.2 * det::unit_f64(det::mix2(base, 11));
        let mean_gap_ns = ((total_cost as f64 / util).ceil() as u64).max(1);
        let arrivals = det::unit_range(det::mix2(base, 12), 50, 400);
        let source = match det::unit_range(det::mix2(base, 13), 0, 2) {
            0 => SourceKind::Constant,
            1 => SourceKind::Poisson,
            _ => SourceKind::OnOff,
        };
        let fh = det::mix2(base, 14);
        let faults = match det::unit_range(fh, 0, 3) {
            0 | 1 => FaultPlan::default(),
            2 => FaultPlan {
                burst_prob: 0.02 + 0.08 * det::unit_f64(det::mix2(fh, 1)),
                burst_len: det::unit_range(det::mix2(fh, 2), 2, 20) as u32,
                burst_spread_ns: mean_gap_ns.max(1),
                ..FaultPlan::default()
            },
            _ => FaultPlan {
                stall_prob: 0.01 + 0.04 * det::unit_f64(det::mix2(fh, 3)),
                stall_len_ns: mean_gap_ns.saturating_mul(det::unit_range(det::mix2(fh, 4), 5, 50)),
                ..FaultPlan::default()
            },
        };
        let ah = det::mix2(base, 15);
        let admission = match det::unit_range(ah, 0, 3) {
            0 | 1 => AdmissionPlan {
                mode: 0,
                capacity: 0,
                watermark: 0,
            },
            mode_pick => {
                let capacity = det::unit_range(det::mix2(ah, 1), 1, 16) as usize;
                let watermark = if det::coin(det::mix2(ah, 2), 0.5) {
                    0
                } else {
                    capacity * n_queries
                };
                AdmissionPlan {
                    mode: if mode_pick == 2 { 1 } else { 2 },
                    capacity,
                    watermark,
                }
            }
        };
        let clusters = det::unit_range(det::mix2(base, 16), 1, 8) as usize;
        let cost_miscalibration = if det::coin(det::mix2(base, 17), 0.3) {
            0.5 * det::unit_f64(det::mix2(base, 18))
        } else {
            0.0
        };
        let cost_jitter = if det::coin(det::mix2(base, 19), 0.3) {
            0.3 * det::unit_f64(det::mix2(base, 20))
        } else {
            0.0
        };
        // Robustness dimensions (salts ≥ 22): governor, deadlines, operator
        // failures, and source disconnects, each off most of the time so
        // plain scenarios stay the common case.
        let gh = det::mix2(base, 22);
        let governor = if det::coin(gh, 0.3) {
            let run_ns = mean_gap_ns.saturating_mul(arrivals).max(1);
            let cadence_ns = (run_ns / 64).max(1);
            let escalate = det::unit_range(det::mix2(gh, 2), 8, 64) as usize;
            GovernorPlan {
                enabled: true,
                cadence_ns,
                min_dwell_ns: cadence_ns
                    .saturating_mul(det::unit_range(det::mix2(gh, 1), 2, 8))
                    .max(1),
                escalate_pending: escalate,
                deescalate_pending: escalate / 4,
                capacity: det::unit_range(det::mix2(gh, 3), 1, 16) as usize,
                watermark: (escalate / 2).max(1),
                switch_policy: det::coin(det::mix2(gh, 4), 0.3),
            }
        } else {
            GovernorPlan::default()
        };
        let dh = det::mix2(base, 26);
        let deadline_ns = if det::coin(dh, 0.25) {
            if det::coin(det::mix2(dh, 1), 0.15) {
                Some(0) // the degenerate "must start at arrival" corner
            } else {
                Some(mean_gap_ns.saturating_mul(det::unit_range(det::mix2(dh, 2), 1, 60)))
            }
        } else {
            None
        };
        let oh = det::mix2(base, 28);
        let op_failures = if det::coin(oh, 0.25) {
            OpFailurePlan {
                prob: 0.02 + 0.1 * det::unit_f64(det::mix2(oh, 1)),
                cooldown_ns: mean_gap_ns
                    .saturating_mul(det::unit_range(det::mix2(oh, 2), 1, 20))
                    .max(1),
                retries: det::unit_range(det::mix2(oh, 3), 0, 3) as u32,
            }
        } else {
            OpFailurePlan::default()
        };
        let run_ns = mean_gap_ns.saturating_mul(arrivals).max(1);
        let eh = det::mix2(base, 32);
        let adapt = if det::coin(eh, 0.25) {
            AdaptPlan {
                enabled: true,
                mode: if det::coin(det::mix2(eh, 1), 0.3) {
                    1
                } else {
                    0
                },
                alpha: 0.05 + 0.45 * det::unit_f64(det::mix2(eh, 2)),
                cadence_ns: (run_ns / det::unit_range(det::mix2(eh, 3), 8, 64)).max(1),
                min_observations: det::unit_range(det::mix2(eh, 4), 1, 4),
                // Mostly closed-loop; sometimes the observe-only probe whose
                // bit-identity to a plain run the invariant suite asserts.
                publish: !det::coin(det::mix2(eh, 5), 0.2),
            }
        } else {
            AdaptPlan::default()
        };
        let rh = det::mix2(base, 33);
        let drift = if det::coin(rh, 0.2) {
            let steps = det::unit_range(det::mix2(rh, 1), 1, 3);
            (0..steps)
                .map(|i| {
                    let sh = det::mix2(rh, 10 + i);
                    DriftStepPlan {
                        // Strictly increasing step times across the run.
                        at_ns: run_ns / (steps + 1) * (i + 1),
                        // Log-uniform over [0.25, 4].
                        cost_factor: 4f64.powf(2.0 * det::unit_f64(det::mix2(sh, 1)) - 1.0),
                        sel_factor: 0.5 + det::unit_f64(det::mix2(sh, 2)),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let xh = det::mix2(base, 30);
        let disconnect = if det::coin(xh, 0.2) {
            DisconnectPlan {
                prob: 0.002 + 0.02 * det::unit_f64(det::mix2(xh, 1)),
                retry_base_ns: mean_gap_ns
                    .saturating_mul(det::unit_range(det::mix2(xh, 2), 1, 10))
                    .max(1),
                max_retries: det::unit_range(det::mix2(xh, 3), 1, 6) as u32,
                reconnect_prob: 0.3 + 0.7 * det::unit_f64(det::mix2(xh, 4)),
            }
        } else {
            DisconnectPlan::default()
        };
        Scenario {
            seed,
            case,
            queries,
            mean_gap_ns,
            arrivals,
            source,
            faults,
            admission,
            clusters,
            sim_seed: det::mix2(base, 21),
            cost_miscalibration,
            cost_jitter,
            governor,
            deadline_ns,
            op_failures,
            disconnect,
            adapt,
            drift,
        }
    }

    /// Compile the query specs into a validated [`GlobalPlan`].
    pub fn plan(&self) -> Result<GlobalPlan> {
        let mut plan = GlobalPlan::default();
        for q in &self.queries {
            let mut b = QueryBuilder::on(StreamId::new(0));
            for op in &q.ops {
                let cost = Nanos::from_nanos(op.cost_ns);
                b = match op.kind {
                    0 => b.select(cost, op.sel),
                    1 => b.stored_join(cost, op.sel),
                    2 => b.project(cost),
                    _ => b.map(cost, op.sel),
                };
            }
            if let Some(d) = self.deadline_ns {
                b = b.with_deadline(Nanos::from_nanos(d));
            }
            plan.add_query(b.build()?);
        }
        Ok(plan)
    }

    /// Build the arrival source (with the fault schedule layered on).
    pub fn source(&self) -> Box<dyn ArrivalSource> {
        let gap = Nanos::from_nanos(self.mean_gap_ns.max(1));
        let seed = det::mix2(self.sim_seed, 0xa21);
        let spec = if self.faults.is_none() {
            None
        } else {
            Some(FaultSpec {
                burst_prob: self.faults.burst_prob,
                burst_len: self.faults.burst_len,
                burst_spread: Nanos::from_nanos(self.faults.burst_spread_ns),
                stall_prob: self.faults.stall_prob,
                stall_len: Nanos::from_nanos(self.faults.stall_len_ns),
                seed: det::mix2(self.sim_seed, 0xfa17),
            })
        };
        macro_rules! wrap {
            ($src:expr) => {
                match spec {
                    Some(s) => Box::new(FaultySource::new($src, s)) as Box<dyn ArrivalSource>,
                    None => Box::new($src) as Box<dyn ArrivalSource>,
                }
            };
        }
        let src = match self.source {
            SourceKind::Constant => wrap!(ConstantSource::new(gap)),
            SourceKind::Poisson => wrap!(PoissonSource::new(gap, seed)),
            SourceKind::OnOff => wrap!(OnOffSource::lbl_like(gap, seed)),
        };
        if self.disconnect.prob > 0.0 {
            Box::new(DisconnectSource::new(
                src,
                DisconnectSpec {
                    disconnect_prob: self.disconnect.prob,
                    retry_base: Nanos::from_nanos(self.disconnect.retry_base_ns),
                    retry_factor: 2.0,
                    retry_jitter: 0.25,
                    max_retries: self.disconnect.max_retries,
                    reconnect_prob: self.disconnect.reconnect_prob,
                    seed: det::mix2(self.sim_seed, 0xd15c),
                },
            ))
        } else {
            src
        }
    }

    /// Build the simulator configuration.
    pub fn config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.arrivals);
        cfg.seed = self.sim_seed;
        cfg.cost_jitter = self.cost_jitter;
        cfg.overload.mode = self.admission.mode();
        cfg.overload.capacity = self.admission.capacity;
        cfg.overload.watermark = self.admission.watermark;
        cfg.faults.cost_miscalibration = self.cost_miscalibration;
        cfg.faults.seed = det::mix2(self.sim_seed, 0xc057);
        cfg.faults.op_failure_prob = self.op_failures.prob;
        cfg.faults.op_failure_cooldown = Nanos::from_nanos(self.op_failures.cooldown_ns);
        cfg.faults.op_failure_retries = self.op_failures.retries;
        if self.governor.enabled {
            cfg.governor = GovernorConfig {
                enabled: true,
                cadence: Nanos::from_nanos(self.governor.cadence_ns),
                min_dwell: Nanos::from_nanos(self.governor.min_dwell_ns),
                escalate_pending: self.governor.escalate_pending,
                deescalate_pending: self.governor.deescalate_pending,
                capacity: self.governor.capacity,
                watermark: self.governor.watermark,
                switch_policy: self.governor.switch_policy,
                ..GovernorConfig::default()
            };
        }
        if self.adapt.enabled {
            cfg.adapt = AdaptConfig {
                enabled: true,
                mode: if self.adapt.mode == 1 {
                    AdaptMode::Windowed
                } else {
                    AdaptMode::Ewma
                },
                alpha: self.adapt.alpha,
                cadence: Nanos::from_nanos(self.adapt.cadence_ns.max(1)),
                min_observations: self.adapt.min_observations,
                publish: self.adapt.publish,
                ..AdaptConfig::default()
            };
        }
        if !self.drift.is_empty() {
            cfg.drift = self
                .drift
                .iter()
                .map(|d| DriftStep {
                    at: Nanos::from_nanos(d.at_ns),
                    cost_factor: d.cost_factor,
                    selectivity_factor: d.sel_factor,
                })
                .collect();
        }
        cfg
    }

    /// Serialize to the `hcq-fuzz-v1` artifact document.
    pub fn to_json(&self) -> Json {
        let queries = self
            .queries
            .iter()
            .map(|q| {
                Json::Arr(
                    q.ops
                        .iter()
                        .map(|o| {
                            Json::Obj(vec![
                                ("kind".into(), Json::Num(o.kind as f64)),
                                ("cost_ns".into(), Json::Num(o.cost_ns as f64)),
                                ("sel".into(), Json::Num(o.sel)),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("seed".into(), Json::Str(self.seed.to_string())),
            ("case".into(), Json::Str(self.case.to_string())),
            ("queries".into(), Json::Arr(queries)),
            ("mean_gap_ns".into(), Json::Num(self.mean_gap_ns as f64)),
            ("arrivals".into(), Json::Num(self.arrivals as f64)),
            (
                "source".into(),
                Json::Str(
                    match self.source {
                        SourceKind::Constant => "constant",
                        SourceKind::Poisson => "poisson",
                        SourceKind::OnOff => "onoff",
                    }
                    .into(),
                ),
            ),
            (
                "faults".into(),
                Json::Obj(vec![
                    ("burst_prob".into(), Json::Num(self.faults.burst_prob)),
                    ("burst_len".into(), Json::Num(self.faults.burst_len as f64)),
                    (
                        "burst_spread_ns".into(),
                        Json::Num(self.faults.burst_spread_ns as f64),
                    ),
                    ("stall_prob".into(), Json::Num(self.faults.stall_prob)),
                    (
                        "stall_len_ns".into(),
                        Json::Num(self.faults.stall_len_ns as f64),
                    ),
                ]),
            ),
            (
                "admission".into(),
                Json::Obj(vec![
                    ("mode".into(), Json::Num(self.admission.mode as f64)),
                    ("capacity".into(), Json::Num(self.admission.capacity as f64)),
                    (
                        "watermark".into(),
                        Json::Num(self.admission.watermark as f64),
                    ),
                ]),
            ),
            ("clusters".into(), Json::Num(self.clusters as f64)),
            ("sim_seed".into(), Json::Str(self.sim_seed.to_string())),
            (
                "cost_miscalibration".into(),
                Json::Num(self.cost_miscalibration),
            ),
            ("cost_jitter".into(), Json::Num(self.cost_jitter)),
            (
                "governor".into(),
                Json::Obj(vec![
                    (
                        "enabled".into(),
                        Json::Num(if self.governor.enabled { 1.0 } else { 0.0 }),
                    ),
                    (
                        "cadence_ns".into(),
                        Json::Num(self.governor.cadence_ns as f64),
                    ),
                    (
                        "min_dwell_ns".into(),
                        Json::Num(self.governor.min_dwell_ns as f64),
                    ),
                    (
                        "escalate_pending".into(),
                        Json::Num(self.governor.escalate_pending as f64),
                    ),
                    (
                        "deescalate_pending".into(),
                        Json::Num(self.governor.deescalate_pending as f64),
                    ),
                    ("capacity".into(), Json::Num(self.governor.capacity as f64)),
                    (
                        "watermark".into(),
                        Json::Num(self.governor.watermark as f64),
                    ),
                    (
                        "switch_policy".into(),
                        Json::Num(if self.governor.switch_policy {
                            1.0
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
            (
                "deadline_ns".into(),
                match self.deadline_ns {
                    // -1 encodes "no deadline": 0 is a meaningful budget.
                    None => Json::Num(-1.0),
                    Some(d) => Json::Num(d as f64),
                },
            ),
            (
                "op_failures".into(),
                Json::Obj(vec![
                    ("prob".into(), Json::Num(self.op_failures.prob)),
                    (
                        "cooldown_ns".into(),
                        Json::Num(self.op_failures.cooldown_ns as f64),
                    ),
                    ("retries".into(), Json::Num(self.op_failures.retries as f64)),
                ]),
            ),
            (
                "disconnect".into(),
                Json::Obj(vec![
                    ("prob".into(), Json::Num(self.disconnect.prob)),
                    (
                        "retry_base_ns".into(),
                        Json::Num(self.disconnect.retry_base_ns as f64),
                    ),
                    (
                        "max_retries".into(),
                        Json::Num(self.disconnect.max_retries as f64),
                    ),
                    (
                        "reconnect_prob".into(),
                        Json::Num(self.disconnect.reconnect_prob),
                    ),
                ]),
            ),
            (
                "adapt".into(),
                Json::Obj(vec![
                    (
                        "enabled".into(),
                        Json::Num(if self.adapt.enabled { 1.0 } else { 0.0 }),
                    ),
                    ("mode".into(), Json::Num(self.adapt.mode as f64)),
                    ("alpha".into(), Json::Num(self.adapt.alpha)),
                    ("cadence_ns".into(), Json::Num(self.adapt.cadence_ns as f64)),
                    (
                        "min_observations".into(),
                        Json::Num(self.adapt.min_observations as f64),
                    ),
                    (
                        "publish".into(),
                        Json::Num(if self.adapt.publish { 1.0 } else { 0.0 }),
                    ),
                ]),
            ),
            (
                "drift".into(),
                Json::Arr(
                    self.drift
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("at_ns".into(), Json::Num(d.at_ns as f64)),
                                ("cost_factor".into(), Json::Num(d.cost_factor)),
                                ("sel_factor".into(), Json::Num(d.sel_factor)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse an artifact document (`hcq-fuzz-v2`, or `hcq-fuzz-v1` with the
    /// robustness dimensions defaulting to "off").
    pub fn from_json(doc: &Json) -> Result<Scenario, String> {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!("unsupported artifact schema {schema:?}"));
        }
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        // Full-width integers (seeds) are serialized as decimal strings:
        // JSON numbers round-trip through f64, which cannot hold a u64.
        let int = |key: &str| -> Result<u64, String> {
            match doc.get(key) {
                Some(Json::Str(s)) => s
                    .parse::<u64>()
                    .map_err(|e| format!("bad integer field {key:?}: {e}")),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("bad integer field {key:?}")),
                None => Err(format!("missing integer field {key:?}")),
            }
        };
        let mut queries = Vec::new();
        for q in doc
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or("missing queries array")?
        {
            let mut ops = Vec::new();
            for o in q.as_arr().ok_or("query is not an operator array")? {
                ops.push(OpSpec {
                    kind: o.get("kind").and_then(Json::as_u64).ok_or("op kind")? as u8,
                    cost_ns: o
                        .get("cost_ns")
                        .and_then(Json::as_u64)
                        .ok_or("op cost_ns")?,
                    sel: o.get("sel").and_then(Json::as_f64).ok_or("op sel")?,
                });
            }
            queries.push(QuerySpec { ops });
        }
        let source = match doc.get("source").and_then(Json::as_str).unwrap_or("") {
            "constant" => SourceKind::Constant,
            "poisson" => SourceKind::Poisson,
            "onoff" => SourceKind::OnOff,
            other => return Err(format!("unknown source kind {other:?}")),
        };
        let f = doc.get("faults").ok_or("missing faults object")?;
        let a = doc.get("admission").ok_or("missing admission object")?;
        let sub_num = |obj: &Json, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        Ok(Scenario {
            seed: int("seed")?,
            case: int("case")?,
            queries,
            mean_gap_ns: int("mean_gap_ns")?,
            arrivals: int("arrivals")?,
            source,
            faults: FaultPlan {
                burst_prob: sub_num(f, "burst_prob")?,
                burst_len: sub_num(f, "burst_len")? as u32,
                burst_spread_ns: sub_num(f, "burst_spread_ns")? as u64,
                stall_prob: sub_num(f, "stall_prob")?,
                stall_len_ns: sub_num(f, "stall_len_ns")? as u64,
            },
            admission: AdmissionPlan {
                mode: sub_num(a, "mode")? as u8,
                capacity: sub_num(a, "capacity")? as usize,
                watermark: sub_num(a, "watermark")? as usize,
            },
            clusters: int("clusters")? as usize,
            sim_seed: int("sim_seed")?,
            cost_miscalibration: num("cost_miscalibration")?,
            cost_jitter: num("cost_jitter")?,
            governor: match doc.get("governor") {
                None => GovernorPlan::default(),
                Some(g) => GovernorPlan {
                    enabled: sub_num(g, "enabled")? != 0.0,
                    cadence_ns: sub_num(g, "cadence_ns")? as u64,
                    min_dwell_ns: sub_num(g, "min_dwell_ns")? as u64,
                    escalate_pending: sub_num(g, "escalate_pending")? as usize,
                    deescalate_pending: sub_num(g, "deescalate_pending")? as usize,
                    capacity: sub_num(g, "capacity")? as usize,
                    watermark: sub_num(g, "watermark")? as usize,
                    // Absent in artifacts written before the meta-scheduler
                    // existed: parse as "never switch".
                    switch_policy: g.get("switch_policy").and_then(Json::as_f64).unwrap_or(0.0)
                        != 0.0,
                },
            },
            deadline_ns: match doc.get("deadline_ns").and_then(Json::as_f64) {
                None => None,
                Some(d) if d < 0.0 => None,
                Some(d) => Some(d as u64),
            },
            op_failures: match doc.get("op_failures") {
                None => OpFailurePlan::default(),
                Some(o) => OpFailurePlan {
                    prob: sub_num(o, "prob")?,
                    cooldown_ns: sub_num(o, "cooldown_ns")? as u64,
                    retries: sub_num(o, "retries")? as u32,
                },
            },
            disconnect: match doc.get("disconnect") {
                None => DisconnectPlan::default(),
                Some(d) => DisconnectPlan {
                    prob: sub_num(d, "prob")?,
                    retry_base_ns: sub_num(d, "retry_base_ns")? as u64,
                    max_retries: sub_num(d, "max_retries")? as u32,
                    reconnect_prob: sub_num(d, "reconnect_prob")?,
                },
            },
            // Absent in artifacts written before the adaptive layer existed:
            // parse with adaptation off and a stationary environment.
            adapt: match doc.get("adapt") {
                None => AdaptPlan::default(),
                Some(a) => AdaptPlan {
                    enabled: sub_num(a, "enabled")? != 0.0,
                    mode: sub_num(a, "mode")? as u8,
                    alpha: sub_num(a, "alpha")?,
                    cadence_ns: sub_num(a, "cadence_ns")? as u64,
                    min_observations: sub_num(a, "min_observations")? as u64,
                    publish: sub_num(a, "publish")? != 0.0,
                },
            },
            drift: match doc.get("drift").and_then(Json::as_arr) {
                None => Vec::new(),
                Some(steps) => {
                    let mut drift = Vec::with_capacity(steps.len());
                    for d in steps {
                        drift.push(DriftStepPlan {
                            at_ns: sub_num(d, "at_ns")? as u64,
                            cost_factor: sub_num(d, "cost_factor")?,
                            sel_factor: sub_num(d, "sel_factor")?,
                        });
                    }
                    drift
                }
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function() {
        let a = Scenario::generate(7, 42);
        let b = Scenario::generate(7, 42);
        assert_eq!(a, b);
        assert_ne!(a, Scenario::generate(7, 43));
        assert_ne!(a, Scenario::generate(8, 42));
    }

    #[test]
    fn generated_scenarios_compile_to_valid_plans() {
        for case in 0..64 {
            let s = Scenario::generate(1, case);
            let plan = s.plan().unwrap_or_else(|e| {
                panic!("case {case}: generated scenario fails plan validation: {e}")
            });
            assert_eq!(plan.len(), s.queries.len());
            assert!(s.mean_gap_ns >= 1);
            assert!(s.arrivals >= 50);
            let _ = s.source();
            let _ = s.config();
        }
    }

    #[test]
    fn artifact_round_trip_is_lossless() {
        for case in 0..16 {
            let s = Scenario::generate(3, case);
            let doc = s.to_json().to_string();
            let back = Scenario::from_json(&Json::parse(&doc).unwrap()).unwrap();
            assert_eq!(back, s, "artifact round-trip changed case {case}");
            // And byte-stable: re-serializing the parsed value is identical.
            assert_eq!(back.to_json().to_string(), doc);
        }
    }

    #[test]
    fn rejects_unknown_schema() {
        let mut s = Scenario::generate(0, 0).to_json();
        if let Json::Obj(pairs) = &mut s {
            pairs[0].1 = Json::Str("hcq-fuzz-v0".into());
        }
        assert!(Scenario::from_json(&s).is_err());
    }

    #[test]
    fn v1_artifacts_parse_with_robustness_dimensions_off() {
        // Strip the v2 fields and relabel: the document a v1 fuzzer wrote.
        let mut s = Scenario::generate(3, 5).to_json();
        if let Json::Obj(pairs) = &mut s {
            pairs[0].1 = Json::Str(SCHEMA_V1.into());
            pairs.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "governor" | "deadline_ns" | "op_failures" | "disconnect" | "adapt" | "drift"
                )
            });
        }
        let back = Scenario::from_json(&s).unwrap();
        assert_eq!(back.governor, GovernorPlan::default());
        assert_eq!(back.deadline_ns, None);
        assert_eq!(back.op_failures, OpFailurePlan::default());
        assert_eq!(back.disconnect, DisconnectPlan::default());
        assert_eq!(back.adapt, AdaptPlan::default());
        assert!(back.drift.is_empty());
        // The shared v1 dimensions survive untouched.
        let orig = Scenario::generate(3, 5);
        assert_eq!(back.queries, orig.queries);
        assert_eq!(back.admission, orig.admission);
        assert_eq!(back.faults, orig.faults);
    }

    #[test]
    fn robustness_dimensions_are_generated() {
        // Over 200 cases every new dimension must show up at least once,
        // and every generated governor must satisfy the engine's hysteresis
        // validation (escalate > deescalate, capacity ≥ 1).
        let (mut gov, mut dl, mut dl0, mut opf, mut disc) = (0, 0, 0, 0, 0);
        let (mut adp, mut probe, mut drift, mut switch) = (0, 0, 0, 0);
        for case in 0..200 {
            let s = Scenario::generate(11, case);
            if s.governor.enabled {
                gov += 1;
                assert!(s.governor.escalate_pending > s.governor.deescalate_pending);
                assert!(s.governor.capacity >= 1);
                assert!(s.governor.cadence_ns >= 1 && s.governor.min_dwell_ns >= 1);
                if s.governor.switch_policy {
                    switch += 1;
                }
            } else {
                assert!(!s.governor.switch_policy);
            }
            if s.adapt.enabled {
                adp += 1;
                assert!(s.adapt.alpha > 0.0 && s.adapt.alpha <= 1.0);
                assert!(s.adapt.cadence_ns >= 1);
                assert!(s.adapt.min_observations >= 1);
                if !s.adapt.publish {
                    probe += 1;
                }
            }
            if !s.drift.is_empty() {
                drift += 1;
                let mut last = 0;
                for d in &s.drift {
                    assert!(d.at_ns > last, "drift steps must be strictly increasing");
                    last = d.at_ns;
                    assert!(d.cost_factor >= 0.25 && d.cost_factor <= 4.0);
                    assert!(d.sel_factor >= 0.5 && d.sel_factor <= 1.5);
                }
            }
            match s.deadline_ns {
                Some(0) => dl0 += 1,
                Some(_) => dl += 1,
                None => {}
            }
            if s.op_failures.prob > 0.0 {
                opf += 1;
                assert!(s.op_failures.cooldown_ns >= 1);
            }
            if s.disconnect.prob > 0.0 {
                disc += 1;
                assert!(s.disconnect.max_retries >= 1);
            }
        }
        assert!(gov > 20, "governor in {gov}/200 cases");
        assert!(dl > 10, "deadlines in {dl}/200 cases");
        assert!(dl0 > 0, "the deadline-0 corner never generated");
        assert!(opf > 20, "op failures in {opf}/200 cases");
        assert!(disc > 10, "disconnects in {disc}/200 cases");
        assert!(adp > 20, "adaptation in {adp}/200 cases");
        assert!(probe > 0, "the observe-only probe never generated");
        assert!(drift > 10, "drift in {drift}/200 cases");
        assert!(switch > 0, "policy switching never generated");
    }
}
