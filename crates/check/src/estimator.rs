//! Differential oracle for the online statistics estimators.
//!
//! The adaptive layer ([`hcq_engine`]'s `AdaptConfig`) rests on two small
//! pieces of arithmetic in `hcq-core`: the EWMA recurrence
//! `est ← est + α·(x − est)` and tumbling-window means. Both are trivial to
//! state and easy to get subtly wrong (clamp order, degenerate-sample
//! guards, reset semantics), and a wrong estimate silently reprices every
//! priority downstream. This module re-derives both estimators from scratch
//! along *different* computation paths and holds the production code to
//! them, sample by sample, over seeded adversarial observation sequences:
//!
//! * The EWMA reference evaluates the **closed form** over the retained
//!   sample list — `(1−α)^n·init + α·Σ (1−α)^(n−1−i)·x_i` — rather than the
//!   incremental recurrence, so a dropped, duplicated, or mis-weighted
//!   sample shows up as a divergence the recurrence alone could mask.
//! * The window reference maintains the **incremental mean**
//!   `m ← m + (x − m)/k` where production sums and divides, so the two
//!   paths only agree when both are correct means.
//!
//! Sequences over-sample the corners the guards exist for: zero costs,
//! NaN/∞/negative produced figures, α = 1 (last-observation), α near 0, and
//! resets at arbitrary points. A convergence property rides along: seeded
//! with a miscalibrated initial guess, the EWMA must end within tolerance
//! of a stationary stream's true mean — the estimator analog of the
//! engine-level recovery tests.

use hcq_common::{det, Nanos};
use hcq_core::{EwmaEstimator, WindowedEstimator};

use crate::invariants::Violation;

/// Relative tolerance for the EWMA differential comparison: the closed form
/// and the recurrence are algebraically equal but round differently.
const EWMA_RTOL: f64 = 1e-6;

/// Relative tolerance for the window-mean comparison (two summation
/// orders).
const MEAN_RTOL: f64 = 1e-9;

/// From-scratch EWMA reference: retains every accepted sample and evaluates
/// the closed-form weighted sum on demand.
struct RefEwma {
    alpha: f64,
    init_cost_ns: f64,
    init_sel: f64,
    samples: Vec<(f64, f64)>,
}

impl RefEwma {
    fn new(alpha: f64, init_cost: Nanos, init_sel: f64) -> Self {
        RefEwma {
            alpha,
            init_cost_ns: init_cost.as_nanos() as f64,
            init_sel,
            samples: Vec::new(),
        }
    }

    /// Mirror of the production guard: non-finite/negative `produced`
    /// figures drop the whole sample.
    fn observe(&mut self, cost: Nanos, produced: f64) {
        if produced.is_finite() && produced >= 0.0 {
            self.samples.push((cost.as_nanos() as f64, produced));
        }
    }

    /// Closed-form weighted sum over one component (0 = cost, 1 = sel).
    fn closed_form(&self, init: f64, pick: impl Fn(&(f64, f64)) -> f64) -> f64 {
        let n = self.samples.len() as i32;
        let decay = (1.0 - self.alpha).powi(n);
        let mut acc = decay * init;
        for (i, s) in self.samples.iter().enumerate() {
            acc += self.alpha * (1.0 - self.alpha).powi(n - 1 - i as i32) * pick(s);
        }
        acc
    }

    fn cost(&self) -> Nanos {
        let raw = self.closed_form(self.init_cost_ns, |s| s.0);
        Nanos::from_nanos(raw.round().max(1.0) as u64)
    }

    fn selectivity(&self) -> f64 {
        self.closed_form(self.init_sel, |s| s.1).max(1e-6)
    }

    fn observations(&self) -> u64 {
        self.samples.len() as u64
    }
}

/// From-scratch window reference: incremental mean instead of sum/divide.
#[derive(Default)]
struct RefWindow {
    mean_cost_ns: f64,
    mean_produced: f64,
    count: u64,
    total: u64,
}

impl RefWindow {
    fn observe(&mut self, cost: Nanos, produced: f64) {
        if produced.is_finite() && produced >= 0.0 {
            self.count += 1;
            self.total += 1;
            let k = self.count as f64;
            self.mean_cost_ns += (cost.as_nanos() as f64 - self.mean_cost_ns) / k;
            self.mean_produced += (produced - self.mean_produced) / k;
        }
    }

    fn cost(&self) -> Option<Nanos> {
        (self.count > 0).then(|| Nanos::from_nanos(self.mean_cost_ns.round().max(1.0) as u64))
    }

    fn selectivity(&self) -> Option<f64> {
        (self.count > 0).then(|| self.mean_produced.max(1e-6))
    }

    fn reset(&mut self) {
        self.mean_cost_ns = 0.0;
        self.mean_produced = 0.0;
        self.count = 0;
    }
}

fn close(a: f64, b: f64, rtol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rtol * scale
}

/// One generated observation: a cost and a produced figure, over-sampling
/// zero costs and the degenerate produced values the guards must drop.
fn gen_observation(h: u64) -> (Nanos, f64) {
    let cost = if det::coin(det::mix2(h, 1), 0.1) {
        Nanos::ZERO
    } else {
        // Log-uniform over [1 ns, 1 s).
        let exp = det::unit_f64(det::mix2(h, 2)) * 9.0;
        Nanos::from_nanos(10f64.powf(exp) as u64)
    };
    let produced = if det::coin(det::mix2(h, 3), 0.1) {
        match det::unit_range(det::mix2(h, 4), 0, 3) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => -1.0,
        }
    } else {
        // Joins can produce more than one tuple per input.
        3.0 * det::unit_f64(det::mix2(h, 5))
    };
    (cost, produced)
}

/// Pick a smoothing factor, over-sampling both ends of (0, 1].
fn gen_alpha(h: u64) -> f64 {
    let r = det::unit_f64(det::mix2(h, 6));
    if r < 0.15 {
        1.0
    } else if r < 0.3 {
        1e-3
    } else {
        0.05 + 0.9 * det::unit_f64(det::mix2(h, 7))
    }
}

/// Differentially fuzz both estimators for case `case` of run `seed`.
///
/// Drives one adversarial observation sequence through the production
/// estimators and the references, comparing after **every** sample, then
/// checks the convergence property on a stationary tail. Violations use
/// the policy field to name the estimator under test.
pub fn fuzz_estimators(seed: u64, case: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut fail = |estimator: &str, invariant: &'static str, detail: String| {
        violations.push(Violation {
            policy: estimator.to_string(),
            invariant,
            detail,
        });
    };
    let base = det::mix2(det::splitmix64(seed ^ 0x6573_7469_6d61_7465), case);
    let alpha = gen_alpha(base);
    let init_cost = Nanos::from_nanos(det::unit_range(det::mix2(base, 8), 1, 1_000_000));
    let init_sel = det::unit_f64(det::mix2(base, 9));
    let n = det::unit_range(det::mix2(base, 10), 1, 200);

    let mut ewma = EwmaEstimator::new(alpha, init_cost, init_sel);
    let mut ewma_ref = RefEwma::new(alpha, init_cost, init_sel);
    let mut win = WindowedEstimator::new();
    let mut win_ref = RefWindow::default();
    for i in 0..n {
        let h = det::mix2(base, 1_000 + i);
        let (cost, produced) = gen_observation(h);
        ewma.observe(cost, produced);
        ewma_ref.observe(cost, produced);
        win.observe(cost, produced);
        win_ref.observe(cost, produced);

        if ewma.observations() != ewma_ref.observations() {
            fail(
                "EWMA",
                "estimator-differential",
                format!(
                    "step {i}: {} samples accepted, reference accepted {}",
                    ewma.observations(),
                    ewma_ref.observations()
                ),
            );
            break;
        }
        let (c, rc) = (
            ewma.cost().as_nanos() as f64,
            ewma_ref.cost().as_nanos() as f64,
        );
        if !close(c, rc, EWMA_RTOL) {
            fail(
                "EWMA",
                "estimator-differential",
                format!("step {i}: cost {c} ns, closed form says {rc} ns"),
            );
            break;
        }
        let (s, rs) = (ewma.selectivity(), ewma_ref.selectivity());
        if !close(s, rs, EWMA_RTOL) {
            fail(
                "EWMA",
                "estimator-differential",
                format!("step {i}: selectivity {s}, closed form says {rs}"),
            );
            break;
        }
        if !s.is_finite() || !c.is_finite() || s < 0.0 {
            fail(
                "EWMA",
                "estimator-sane",
                format!("step {i}: estimate left the sane range (cost {c}, sel {s})"),
            );
            break;
        }

        if win.window_len() != win_ref.count {
            fail(
                "Windowed",
                "estimator-differential",
                format!(
                    "step {i}: window holds {} samples, reference holds {}",
                    win.window_len(),
                    win_ref.count
                ),
            );
            break;
        }
        match (
            win.cost(),
            win_ref.cost(),
            win.selectivity(),
            win_ref.selectivity(),
        ) {
            (Some(c), Some(rc), Some(s), Some(rs)) => {
                let (c, rc) = (c.as_nanos() as f64, rc.as_nanos() as f64);
                // Means round to whole nanoseconds; the two summation
                // orders may land on adjacent integers, never further —
                // beyond that, require bit-level relative agreement.
                if (c - rc).abs() > 1.0 && !close(c, rc, MEAN_RTOL) {
                    fail(
                        "Windowed",
                        "estimator-differential",
                        format!("step {i}: mean cost {c} ns, incremental mean says {rc} ns"),
                    );
                    break;
                }
                if !close(s, rs, MEAN_RTOL) {
                    fail(
                        "Windowed",
                        "estimator-differential",
                        format!("step {i}: mean selectivity {s}, incremental mean says {rs}"),
                    );
                    break;
                }
            }
            (None, None, None, None) => {}
            other => {
                fail(
                    "Windowed",
                    "estimator-differential",
                    format!("step {i}: emptiness disagreement {other:?}"),
                );
                break;
            }
        }
        if win.observations() != win_ref.total {
            fail(
                "Windowed",
                "estimator-differential",
                format!(
                    "step {i}: lifetime count {} vs reference {}",
                    win.observations(),
                    win_ref.total
                ),
            );
            break;
        }
        // Publication boundaries at arbitrary points: both must forget.
        if det::coin(det::mix2(h, 11), 0.2) {
            win.reset();
            win_ref.reset();
        }
    }

    // Convergence: seeded miscalibrated (the stationary stream's true mean
    // is far from the initial guess), a fresh moderate-α EWMA must end
    // within tolerance of the truth. Mirrors the engine-level recovery
    // property at the estimator's own level.
    let true_cost_ns = det::unit_range(det::mix2(base, 12), 1_000, 1_000_000) as f64;
    let true_sel = 0.05 + 0.9 * det::unit_f64(det::mix2(base, 13));
    let mut conv = EwmaEstimator::new(
        0.2,
        Nanos::from_nanos((true_cost_ns * 4.0) as u64),
        (true_sel * 0.25).max(1e-6),
    );
    // Feed per-window batch means, as the engine's adaptive layer does: the
    // EWMA sees one low-variance sample per publication window rather than
    // raw Bernoulli draws.
    for w in 0..40u64 {
        let (mut cost_sum, mut produced_sum) = (0.0, 0.0);
        for i in 0..10u64 {
            let h = det::mix2(base, 10_000 + w * 10 + i);
            // ±20% deterministic noise around the stationary truth;
            // produced is a Bernoulli draw at the true selectivity.
            let jitter = 1.0 + 0.2 * (2.0 * det::unit_f64(det::mix2(h, 1)) - 1.0);
            cost_sum += true_cost_ns * jitter;
            produced_sum += if det::coin(det::mix2(h, 2), true_sel) {
                1.0
            } else {
                0.0
            };
        }
        conv.observe(
            Nanos::from_nanos((cost_sum / 10.0) as u64),
            produced_sum / 10.0,
        );
    }
    let got_cost = conv.cost().as_nanos() as f64;
    if (got_cost - true_cost_ns).abs() > 0.15 * true_cost_ns {
        fail(
            "EWMA",
            "estimator-convergence",
            format!("stationary cost {true_cost_ns} ns estimated as {got_cost} ns"),
        );
    }
    let got_sel = conv.selectivity();
    if (got_sel - true_sel).abs() > 0.25 {
        fail(
            "EWMA",
            "estimator-convergence",
            format!("stationary selectivity {true_sel} estimated as {got_sel}"),
        );
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_clean() {
        for case in 0..64 {
            let v = fuzz_estimators(5, case);
            assert!(
                v.is_empty(),
                "case {case} diverged:\n{}",
                v.iter().map(|x| format!("  {x}\n")).collect::<String>()
            );
        }
    }

    #[test]
    fn is_a_pure_function() {
        // Violation-free or not, the drill must be deterministic (it feeds
        // the jobs-invariant sweep digest).
        for case in 0..8 {
            assert_eq!(fuzz_estimators(7, case), fuzz_estimators(7, case));
        }
    }

    #[test]
    fn closed_form_matches_a_hand_computed_sequence() {
        // α = 0.5, init 100: after samples 200, 400 the recurrence gives
        // 100→150→275; the closed form must agree exactly.
        let mut r = RefEwma::new(0.5, Nanos::from_nanos(100), 0.0);
        r.observe(Nanos::from_nanos(200), 0.0);
        r.observe(Nanos::from_nanos(400), 0.0);
        assert_eq!(r.cost(), Nanos::from_nanos(275));
        assert_eq!(r.observations(), 2);
    }

    #[test]
    fn references_drop_degenerate_samples_like_production() {
        let mut r = RefEwma::new(0.5, Nanos::from_nanos(100), 0.5);
        let mut w = RefWindow::default();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -2.0] {
            r.observe(Nanos::from_nanos(999), bad);
            w.observe(Nanos::from_nanos(999), bad);
        }
        assert_eq!(r.observations(), 0);
        assert_eq!(r.cost(), Nanos::from_nanos(100));
        assert_eq!(w.count, 0);
        assert_eq!(w.cost(), None);
    }
}
