//! Greedy scenario shrinking and replayable artifacts.
//!
//! When a scenario violates an invariant, replaying the raw generated case
//! is a poor debugging start: six queries, hundreds of arrivals, a fault
//! schedule. [`shrink`] applies a fixed sequence of simplifying
//! transformations — halve the query set, halve the arrivals, drop trailing
//! operators, strip faults and admission bounds, flatten the source — and
//! keeps each one only if the scenario *still fails*, iterating to a fixed
//! point. The result is written as a `fuzz-repro-<seed>-<case>.json`
//! artifact (the scenario document of [`crate::scenario`] plus the observed
//! violations) that `crates/check/tests/replay.rs` re-runs forever after.

use crate::invariants::Violation;
use crate::json::Json;
use crate::scenario::{FaultPlan, Scenario, SourceKind};

/// One shrinking transformation: returns a strictly simpler candidate, or
/// `None` when it no longer applies.
type Transform = fn(&Scenario) -> Option<Scenario>;

fn halve_queries(s: &Scenario) -> Option<Scenario> {
    if s.queries.len() <= 1 {
        return None;
    }
    let mut t = s.clone();
    t.queries.truncate(s.queries.len().div_ceil(2));
    Some(t)
}

fn drop_last_query(s: &Scenario) -> Option<Scenario> {
    if s.queries.len() <= 1 {
        return None;
    }
    let mut t = s.clone();
    t.queries.pop();
    Some(t)
}

fn halve_arrivals(s: &Scenario) -> Option<Scenario> {
    if s.arrivals <= 1 {
        return None;
    }
    let mut t = s.clone();
    t.arrivals = (s.arrivals / 2).max(1);
    Some(t)
}

fn decrement_arrivals(s: &Scenario) -> Option<Scenario> {
    // Fine-grained follow-up to halving: halving stops one doubling above
    // the failure threshold; stepping by one finds the exact floor.
    if s.arrivals <= 1 {
        return None;
    }
    let mut t = s.clone();
    t.arrivals -= 1;
    Some(t)
}

fn drop_trailing_op(s: &Scenario) -> Option<Scenario> {
    // Trim the deepest query by one operator (every query keeps ≥ 1 op so
    // the plan stays valid).
    let (idx, len) = s
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| (i, q.ops.len()))
        .max_by_key(|&(_, len)| len)?;
    if len <= 1 {
        return None;
    }
    let mut t = s.clone();
    t.queries[idx].ops.pop();
    Some(t)
}

fn strip_faults(s: &Scenario) -> Option<Scenario> {
    if s.faults.is_none() {
        return None;
    }
    let mut t = s.clone();
    t.faults = FaultPlan::default();
    Some(t)
}

fn unbound_admission(s: &Scenario) -> Option<Scenario> {
    if s.admission.mode == 0 {
        return None;
    }
    let mut t = s.clone();
    t.admission.mode = 0;
    Some(t)
}

fn flatten_source(s: &Scenario) -> Option<Scenario> {
    if s.source == SourceKind::Constant {
        return None;
    }
    let mut t = s.clone();
    t.source = SourceKind::Constant;
    Some(t)
}

fn calm_costs(s: &Scenario) -> Option<Scenario> {
    if s.cost_jitter == 0.0 && s.cost_miscalibration == 0.0 {
        return None;
    }
    let mut t = s.clone();
    t.cost_jitter = 0.0;
    t.cost_miscalibration = 0.0;
    Some(t)
}

fn single_cluster(s: &Scenario) -> Option<Scenario> {
    if s.clusters <= 1 {
        return None;
    }
    let mut t = s.clone();
    t.clusters = 1;
    Some(t)
}

fn strip_drift(s: &Scenario) -> Option<Scenario> {
    // Drop drift steps from the back first (earlier steps dominate the
    // run), then the whole schedule.
    if s.drift.is_empty() {
        return None;
    }
    let mut t = s.clone();
    t.drift.pop();
    Some(t)
}

fn disable_adaptation(s: &Scenario) -> Option<Scenario> {
    if !s.adapt.enabled {
        return None;
    }
    let mut t = s.clone();
    t.adapt = Default::default();
    Some(t)
}

const TRANSFORMS: &[Transform] = &[
    halve_queries,
    drop_last_query,
    halve_arrivals,
    decrement_arrivals,
    drop_trailing_op,
    strip_faults,
    unbound_admission,
    flatten_source,
    calm_costs,
    single_cluster,
    strip_drift,
    disable_adaptation,
];

/// Greedily shrink `scenario` while `still_fails` holds, to a fixed point.
///
/// `still_fails` is typically `|s| !check_scenario(s).is_empty()`; it is
/// re-evaluated on every candidate, so shrinking costs a bounded number of
/// full invariant runs (each transformation strictly reduces a finite
/// measure — query count, op count, arrivals, or an enabled knob).
pub fn shrink(scenario: &Scenario, still_fails: &dyn Fn(&Scenario) -> bool) -> Scenario {
    let mut current = scenario.clone();
    loop {
        let mut progressed = false;
        for transform in TRANSFORMS {
            while let Some(candidate) = transform(&current) {
                if still_fails(&candidate) {
                    current = candidate;
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Canonical artifact file name for a failing case.
pub fn artifact_name(seed: u64, case: u64) -> String {
    format!("fuzz-repro-{seed}-{case}.json")
}

/// Render the artifact document: the scenario plus the violations that
/// condemned it (informational — replay re-derives them).
pub fn render_artifact(scenario: &Scenario, violations: &[Violation]) -> String {
    let mut doc = scenario.to_json();
    if let Json::Obj(pairs) = &mut doc {
        pairs.push((
            "violations".into(),
            Json::Arr(
                violations
                    .iter()
                    .map(|v| Json::Str(v.to_string()))
                    .collect(),
            ),
        ));
    }
    let mut text = doc.to_string();
    text.push('\n');
    text
}

/// Parse an artifact document back into its scenario (the `violations`
/// field, and any other unknown field, is ignored).
pub fn parse_artifact(text: &str) -> Result<Scenario, String> {
    let doc = Json::parse(text)?;
    Scenario::from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn shrinks_to_a_minimal_failing_scenario() {
        let original = Scenario::generate(17, 0);
        // Synthetic predicate: "fails whenever there are at least 2 arrivals
        // or a fault schedule" — the shrinker must reach exactly that floor.
        let fails = |s: &Scenario| s.arrivals >= 2;
        let minimal = shrink(&original, &fails);
        assert_eq!(minimal.arrivals, 2);
        assert_eq!(minimal.queries.len(), 1);
        assert_eq!(minimal.queries[0].ops.len(), 1);
        assert!(minimal.faults.is_none());
        assert_eq!(minimal.admission.mode, 0);
        assert_eq!(minimal.source, SourceKind::Constant);
        assert_eq!(minimal.clusters, 1);
        assert!(minimal.drift.is_empty(), "drift schedule must shrink away");
        assert!(!minimal.adapt.enabled, "adaptation must shrink away");
        // Identity is preserved for replay.
        assert_eq!(minimal.seed, original.seed);
        assert_eq!(minimal.case, original.case);
    }

    #[test]
    fn shrinking_never_accepts_a_passing_candidate() {
        let original = Scenario::generate(17, 1);
        let queries = original.queries.len();
        // Predicate pins the query count: no transformation that changes it
        // may be accepted.
        let fails = move |s: &Scenario| s.queries.len() == queries;
        let minimal = shrink(&original, &fails);
        assert_eq!(minimal.queries.len(), queries);
    }

    #[test]
    fn artifacts_round_trip() {
        let s = Scenario::generate(4, 2);
        let v = vec![Violation {
            policy: "HNR".into(),
            invariant: "conservation",
            detail: "1 ≠ 2".into(),
        }];
        let text = render_artifact(&s, &v);
        assert!(text.contains("conservation"));
        let back = parse_artifact(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(artifact_name(4, 2), "fuzz-repro-4-2.json");
    }
}
