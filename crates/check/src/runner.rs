//! The fuzz sweep: generate → check → shrink → artifact.
//!
//! [`run_fuzz`] drives `cases` scenarios derived from one seed through the
//! check layers — the engine-level invariant suite ([`crate::invariants`]),
//! the policy-level degenerate-statics drill ([`crate::policyfuzz`]), and
//! the estimator differential oracle ([`crate::estimator`]) —
//! optionally across a thread pool. Work distribution is a shared atomic
//! cursor (identical to the repro harness's pattern, but dependency-free:
//! `hcq-repro` depends on this crate, not the other way around), and results
//! are keyed by case index, so the outcome — including the run digest — is
//! **byte-identical for every `--jobs` value**. The digest itself is an
//! FNV-1a fold over every per-policy report fingerprint in case order;
//! comparing two digests compares tens of thousands of counters and
//! bit-exact floats at once.
//!
//! A failing case is shrunk ([`crate::shrink`]) against the engine-level
//! suite and written as a replayable `fuzz-repro-<seed>-<case>.json`
//! artifact; policy-level failures replay from the `(seed, case)` identity
//! the artifact preserves, so one file reproduces either kind.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::estimator::fuzz_estimators;
use crate::incremental::fuzz_incremental;
use crate::invariants::{check_scenario, check_scenario_full, Violation};
use crate::policyfuzz::fuzz_policies;
use crate::scenario::Scenario;
use crate::shrink::{artifact_name, render_artifact, shrink};

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: case `i` is `Scenario::generate(seed, i)`.
    pub seed: u64,
    /// Number of cases to sweep.
    pub cases: u64,
    /// Worker threads (1 = sequential; the outcome is identical either way).
    pub jobs: usize,
    /// Where failing-case artifacts are written (`None` = don't write).
    pub artifact_dir: Option<PathBuf>,
    /// Overwrite an existing artifact file instead of refusing. A replay
    /// artifact someone is still debugging should not be silently replaced
    /// by a re-run; the CLI surfaces this as `repro fuzz --force`.
    pub force: bool,
}

impl FuzzConfig {
    /// A sequential sweep of `cases` cases under `seed`, writing no
    /// artifacts.
    pub fn new(seed: u64, cases: u64) -> Self {
        FuzzConfig {
            seed,
            cases,
            jobs: 1,
            artifact_dir: None,
            force: false,
        }
    }
}

/// One case's outcome.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case index under the sweep seed.
    pub case: u64,
    /// Violations from both check layers (empty = clean).
    pub violations: Vec<Violation>,
    /// Per-policy report fingerprints from the engine-level suite.
    pub fingerprints: Vec<(String, String)>,
    /// The minimized scenario, present only when the case failed.
    pub minimized: Option<Scenario>,
}

/// The sweep outcome.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Per-case results in case order (independent of `jobs`).
    pub results: Vec<CaseResult>,
    /// FNV-1a digest over every fingerprint, in case order. Two sweeps with
    /// the same seed/cases must produce the same digest at any `jobs`.
    pub digest: String,
    /// Artifacts written for failing cases.
    pub artifacts: Vec<PathBuf>,
}

impl FuzzOutcome {
    /// Total failing cases.
    pub fn failures(&self) -> usize {
        self.results
            .iter()
            .filter(|r| !r.violations.is_empty())
            .count()
    }
}

/// Check one case through both layers.
fn run_case(seed: u64, case: u64) -> CaseResult {
    let scenario = Scenario::generate(seed, case);
    let engine = check_scenario_full(&scenario);
    let mut violations = engine.violations;
    violations.extend(fuzz_policies(seed, case));
    violations.extend(fuzz_incremental(seed, case));
    violations.extend(fuzz_estimators(seed, case));
    let minimized = if violations.is_empty() {
        None
    } else {
        // Shrink against the engine-level suite when that is what failed;
        // a policy-level-only failure keeps the scenario as-is (its
        // `(seed, case)` identity is what replays the statics drill).
        Some(shrink(&scenario, &|s| !check_scenario(s).is_empty()))
    };
    CaseResult {
        case,
        violations,
        fingerprints: engine.fingerprints,
        minimized,
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Run the sweep.
pub fn run_fuzz(cfg: &FuzzConfig) -> std::io::Result<FuzzOutcome> {
    let jobs = cfg.jobs.max(1);
    let mut slots: Vec<Option<CaseResult>> = Vec::new();
    slots.resize_with(cfg.cases as usize, || None);
    if jobs == 1 {
        for case in 0..cfg.cases {
            slots[case as usize] = Some(run_case(cfg.seed, case));
        }
    } else {
        let next = AtomicU64::new(0);
        {
            let shared = Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| loop {
                        let case = next.fetch_add(1, Ordering::Relaxed);
                        if case >= cfg.cases {
                            return;
                        }
                        let result = run_case(cfg.seed, case);
                        shared.lock().expect("result slots")[case as usize] = Some(result);
                    });
                }
            });
        }
    }
    let results: Vec<CaseResult> = slots
        .into_iter()
        .map(|r| r.expect("every case indexed"))
        .collect();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for r in &results {
        for (policy, fp) in &r.fingerprints {
            digest = fnv1a(policy.as_bytes(), digest);
            digest = fnv1a(fp.as_bytes(), digest);
        }
    }
    let digest = format!("{digest:016x}");
    let mut artifacts = Vec::new();
    if let Some(dir) = &cfg.artifact_dir {
        for r in &results {
            if let Some(minimized) = &r.minimized {
                artifacts.push(write_artifact(dir, minimized, &r.violations, cfg.force)?);
            }
        }
    }
    Ok(FuzzOutcome {
        results,
        digest,
        artifacts,
    })
}

/// Write one failing case's artifact; returns its path. Unless `force` is
/// set, an existing artifact at the same path is left untouched and the
/// write fails with `AlreadyExists` — repro artifacts are evidence, and a
/// re-run must not clobber one mid-investigation.
pub fn write_artifact(
    dir: &Path,
    scenario: &Scenario,
    violations: &[Violation],
    force: bool,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(artifact_name(scenario.seed, scenario.case));
    if !force && path.exists() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            format!(
                "{} already exists; pass --force to overwrite",
                path.display()
            ),
        ));
    }
    std::fs::write(&path, render_artifact(scenario, violations))?;
    Ok(path)
}

/// Replay a scenario (typically parsed from an artifact) through both check
/// layers, exactly as the sweep would.
pub fn replay(scenario: &Scenario) -> Vec<Violation> {
    let mut violations = check_scenario(scenario);
    violations.extend(fuzz_policies(scenario.seed, scenario.case));
    violations.extend(fuzz_incremental(scenario.seed, scenario.case));
    violations.extend(fuzz_estimators(scenario.seed, scenario.case));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_digest_is_jobs_invariant() {
        let mut seq = FuzzConfig::new(13, 6);
        seq.jobs = 1;
        let mut par = FuzzConfig::new(13, 6);
        par.jobs = 4;
        let a = run_fuzz(&seq).unwrap();
        let b = run_fuzz(&par).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.case, y.case);
            assert_eq!(x.fingerprints, y.fingerprints);
        }
        assert_eq!(a.failures(), 0, "seed 13 sweep should be clean");
    }

    #[test]
    fn replay_matches_sweep_for_generated_cases() {
        let s = Scenario::generate(13, 2);
        assert!(replay(&s).is_empty());
    }

    #[test]
    fn artifact_writes_refuse_to_clobber_without_force() {
        let dir = std::env::temp_dir().join(format!("hcq_artifact_guard_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let scenario = Scenario::generate(13, 2);
        let first = write_artifact(&dir, &scenario, &[], false).unwrap();
        std::fs::write(&first, "hand-edited repro").unwrap();
        // A second sweep hitting the same (seed, case) must not clobber the
        // artifact someone is debugging...
        let err = write_artifact(&dir, &scenario, &[], false).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("--force"));
        assert_eq!(
            std::fs::read_to_string(&first).unwrap(),
            "hand-edited repro"
        );
        // ...until force is given.
        let again = write_artifact(&dir, &scenario, &[], true).unwrap();
        assert_eq!(again, first);
        assert_ne!(
            std::fs::read_to_string(&first).unwrap(),
            "hand-edited repro"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
