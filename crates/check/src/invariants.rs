//! The machine-checkable invariant suite.
//!
//! Every generated [`Scenario`] is run under **all** scheduling policies —
//! the paper's seven ([`PolicyKind::ALL`]) plus clustered BSD under both §6
//! splitting strategies — and each run is held to the invariants below.
//! A failure is a [`Violation`] naming the policy, the invariant, and a
//! human-readable detail; the caller ([`crate::runner`]) shrinks the
//! scenario to a minimal artifact.
//!
//! | invariant | statement |
//! |---|---|
//! | `engine-ok` | the engine returns a report, not an [`EngineError`] wedge |
//! | `conservation` | `arrivals × queries = emitted + dropped + shed + expired + pending` (single-stream unary plans: every admitted copy meets exactly one fate; quarantined tuples count as pending) |
//! | `no-shed-unbounded` | `shed = 0` under [`AdmissionMode::Unbounded`] with the governor off |
//! | `governor-dwell` | mode transitions ≤ `end_time / min_dwell + 1` when governed; 0 otherwise |
//! | `monotone-time` | trace-event timestamps never decrease; the final clock bounds them |
//! | `qos-sane` | responses/slowdowns are finite, non-negative, slowdowns ≥ 1, max ≥ avg, emission count matches |
//! | `accounting` | `busy + charged overhead ≤ end_time`; pending peak ≥ mean |
//! | `adapt-sane` | disabled adaptation leaves no estimator trace; an observe-only probe is decision-identical to a non-adaptive run; no policy switches without the meta-scheduler |
//! | `determinism` | two identical runs produce bit-identical reports |
//! | `instrumentation-inert` | traced and monitored runs report exactly what the plain run reports |
//! | `telemetry-reconciles` | the final telemetry snapshot's counters equal the report's |
//!
//! The clustered-BSD ε-bound (§6.2) needs per-decision wait times, so it is
//! checked at the policy layer in [`crate::policyfuzz`], not here.

use hcq_core::{ClusterConfig, ClusteredBsdPolicy, Policy, PolicyKind};
use hcq_engine::{
    simulate, simulate_monitored, simulate_traced, AdmissionMode, SimReport, TraceEvent,
    VecTelemetry, VecTrace,
};
use hcq_plan::StreamRates;

use crate::scenario::Scenario;

/// One invariant failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The policy under which the invariant broke.
    pub policy: String,
    /// Stable invariant identifier (see the module table).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.policy, self.invariant, self.detail)
    }
}

/// Every policy a scenario is checked under: the paper's seven plus
/// clustered BSD with both §6 splitting strategies.
pub fn policy_roster(clusters: usize) -> Vec<(String, Box<dyn Policy>)> {
    let mut roster: Vec<(String, Box<dyn Policy>)> = PolicyKind::ALL
        .iter()
        .map(|k| (k.name().to_string(), k.build()))
        .collect();
    let m = clusters.max(1);
    roster.push((
        format!("C-BSD-log{m}"),
        Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(m))),
    ));
    roster.push((
        format!("C-BSD-uni{m}"),
        Box::new(ClusteredBsdPolicy::new(ClusterConfig::uniform(m))),
    ));
    roster
}

/// Bit-exact fingerprint of a report: every counter, clock, and QoS figure,
/// floats rendered through their IEEE-754 bit patterns. Two reports with
/// equal fingerprints are behaviorally identical runs.
pub fn fingerprint(report: &SimReport) -> String {
    // The estimates vector (adaptive runs only) folds to one FNV-1a hash of
    // its IEEE-754 bit patterns; 0 marks "no estimator ran". It is the LAST
    // token: the probe-inertness check compares everything before it.
    let mut est = 0u64;
    if let Some(estimates) = &report.estimates {
        est = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: f64| {
            for byte in x.to_bits().to_le_bytes() {
                est ^= byte as u64;
                est = est.wrapping_mul(0x100_0000_01b3);
            }
        };
        for s in estimates {
            fold(s.selectivity);
            fold(s.avg_cost_ns);
            fold(s.ideal_time_ns);
        }
    }
    let b = |x: f64| format!("{:016x}", x.to_bits());
    format!(
        "a{} e{} d{} s{} x{} of{} qt{} gt{} ft{} fx{} dc{} ra{} la{} sp{} so{} cs{} pe{} cm{} co{} ho{} ot{} bt{} ov{} et{} pk{} pd{} ap{} qc{} qr{} qR{} qs{} qS{} ql{} ps{} su{} dr{} es{:016x}",
        report.arrivals,
        report.emitted,
        report.dropped,
        report.shed,
        report.expired,
        report.op_failures,
        report.quarantine_time.as_nanos(),
        report.governor_transitions,
        report.fault_stall_time.as_nanos(),
        report.fault_stall_truncated.as_nanos(),
        report.source_disconnects,
        report.source_retry_attempts,
        report.source_lost_arrivals,
        report.sched_points,
        report.sched_ops,
        report.overhead.candidates_scanned,
        report.overhead.priority_evals,
        report.overhead.comparisons,
        report.overhead.cluster_ops,
        report.overhead.heap_ops,
        report.overhead_time.as_nanos(),
        report.busy_time.as_nanos(),
        report.overload_time.as_nanos(),
        report.end_time.as_nanos(),
        report.peak_pending,
        report.pending_end,
        b(report.avg_pending),
        report.qos.count,
        b(report.qos.avg_response_ms),
        b(report.qos.max_response_ms),
        b(report.qos.avg_slowdown),
        b(report.qos.max_slowdown),
        b(report.qos.l2_slowdown),
        report.policy_switches,
        report.statics_updates,
        report.domain_refreezes,
        est,
    )
}

/// Fingerprint minus the trailing estimates fold: the *decision* behavior
/// of a run. An observe-only adaptive probe must match the plain run here
/// while legitimately differing in the harvested estimates.
fn behavior_fingerprint(report: &SimReport) -> String {
    let fp = fingerprint(report);
    fp[..fp
        .rfind(" es")
        .expect("fingerprint ends in the estimates fold")]
        .to_string()
}

/// Outcome of one scenario's full check: any violations, plus the per-policy
/// reference fingerprints (used by [`crate::runner`] to assert byte-identical
/// sweeps across `--jobs` counts).
#[derive(Debug, Clone, Default)]
pub struct ScenarioCheck {
    /// All invariant failures, in roster order.
    pub violations: Vec<Violation>,
    /// `(policy name, report fingerprint)` for every policy that produced a
    /// report.
    pub fingerprints: Vec<(String, String)>,
}

/// Run `scenario` under every policy and collect all invariant violations.
///
/// An empty return means the scenario is clean. See [`check_scenario_full`]
/// for the variant that also exposes report fingerprints.
pub fn check_scenario(scenario: &Scenario) -> Vec<Violation> {
    check_scenario_full(scenario).violations
}

/// Run the full invariant suite and keep the per-policy fingerprints.
///
/// The scenario must compile to a valid plan (generated and shrunk
/// scenarios always do); a plan rejection is reported as a violation rather
/// than a panic so artifacts from future schema versions degrade gracefully.
pub fn check_scenario_full(scenario: &Scenario) -> ScenarioCheck {
    let mut check = ScenarioCheck::default();
    let plan = match scenario.plan() {
        Ok(p) => p,
        Err(e) => {
            check.violations.push(Violation {
                policy: "-".into(),
                invariant: "plan-valid",
                detail: format!("scenario does not compile to a plan: {e}"),
            });
            return check;
        }
    };
    let rates = StreamRates::none();
    for (name, _) in policy_roster(scenario.clusters) {
        check_policy(scenario, &plan, &rates, &name, &mut check);
    }
    check
}

/// Build a fresh policy instance by roster name.
fn build_policy(scenario: &Scenario, name: &str) -> Box<dyn Policy> {
    policy_roster(scenario.clusters)
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, p)| p)
        .expect("roster name is stable")
}

fn check_policy(
    scenario: &Scenario,
    plan: &hcq_plan::GlobalPlan,
    rates: &StreamRates,
    name: &str,
    check: &mut ScenarioCheck,
) {
    let violations = &mut check.violations;
    let fail = |violations: &mut Vec<Violation>, invariant: &'static str, detail: String| {
        violations.push(Violation {
            policy: name.to_string(),
            invariant,
            detail,
        });
    };

    // Plain run: the reference behavior.
    let plain = simulate(
        plan,
        rates,
        vec![scenario.source()],
        build_policy(scenario, name),
        scenario.config(),
    );
    let plain = match plain {
        Ok(r) => r,
        Err(e) => {
            fail(violations, "engine-ok", format!("engine error: {e}"));
            return;
        }
    };
    let reference = fingerprint(&plain);
    check
        .fingerprints
        .push((name.to_string(), reference.clone()));

    // Determinism: an identical rerun must be bit-identical.
    match simulate(
        plan,
        rates,
        vec![scenario.source()],
        build_policy(scenario, name),
        scenario.config(),
    ) {
        Ok(second) => {
            let fp = fingerprint(&second);
            if fp != reference {
                fail(
                    violations,
                    "determinism",
                    format!("rerun diverged:\n  first  {reference}\n  second {fp}"),
                );
            }
        }
        Err(e) => fail(violations, "determinism", format!("rerun errored: {e}")),
    }

    // Conservation: single-stream unary-only plans admit exactly one fate
    // per (arrival × query) copy — emitted, dropped, shed, expired, or
    // still pending (queued or quarantined) at the end.
    let copies = plain.arrivals * scenario.queries.len() as u64;
    let accounted =
        plain.emitted + plain.dropped + plain.shed + plain.expired + plain.pending_end as u64;
    if copies != accounted {
        fail(
            violations,
            "conservation",
            format!(
                "{} arrivals × {} queries = {} copies, but emitted {} + dropped {} + shed {} + expired {} + pending {} = {}",
                plain.arrivals,
                scenario.queries.len(),
                copies,
                plain.emitted,
                plain.dropped,
                plain.shed,
                plain.expired,
                plain.pending_end,
                accounted
            ),
        );
    }
    // An enabled governor may escalate an unbounded base mode into a
    // shedding one, so the no-shed invariant only binds without it.
    if scenario.admission.mode() == AdmissionMode::Unbounded
        && !scenario.governor.enabled
        && plain.shed != 0
    {
        fail(
            violations,
            "no-shed-unbounded",
            format!("{} tuples shed under unbounded queues", plain.shed),
        );
    }
    // Governor anti-flapping: the minimum dwell bounds the transition rate.
    if scenario.governor.enabled {
        let max = plain.end_time.as_nanos() / scenario.governor.min_dwell_ns.max(1) + 1;
        if plain.governor_transitions > max {
            fail(
                violations,
                "governor-dwell",
                format!(
                    "{} transitions over {} ns exceeds the {} ns dwell bound of {}",
                    plain.governor_transitions,
                    plain.end_time.as_nanos(),
                    scenario.governor.min_dwell_ns,
                    max
                ),
            );
        }
    } else if plain.governor_transitions != 0 {
        fail(
            violations,
            "governor-dwell",
            format!(
                "{} transitions with the governor disabled",
                plain.governor_transitions
            ),
        );
    }

    // Adaptive-layer sanity: a disabled feature must leave no trace in the
    // report, and an observe-only probe must not steer.
    if !scenario.adapt.enabled {
        if plain.statics_updates != 0 || plain.domain_refreezes != 0 {
            fail(
                violations,
                "adapt-sane",
                format!(
                    "{} statics updates / {} refreezes with adaptation disabled",
                    plain.statics_updates, plain.domain_refreezes
                ),
            );
        }
        if plain.estimates.is_some() {
            fail(
                violations,
                "adapt-sane",
                "estimates harvested with adaptation disabled".into(),
            );
        }
    } else {
        if plain.estimates.is_none() {
            fail(
                violations,
                "adapt-sane",
                "adaptive run reported no estimates".into(),
            );
        }
        if !scenario.adapt.publish {
            if plain.statics_updates != 0 {
                fail(
                    violations,
                    "adapt-sane",
                    format!(
                        "{} statics updates from an observe-only probe",
                        plain.statics_updates
                    ),
                );
            }
            // The probe watches every execution but never feeds the policy:
            // scheduling must be bit-identical to a non-adaptive run.
            let mut disabled = scenario.clone();
            disabled.adapt = Default::default();
            match simulate(
                plan,
                rates,
                vec![disabled.source()],
                build_policy(&disabled, name),
                disabled.config(),
            ) {
                Ok(r) => {
                    let (probe, plain_fp) =
                        (behavior_fingerprint(&plain), behavior_fingerprint(&r));
                    if probe != plain_fp {
                        fail(
                            violations,
                            "adapt-sane",
                            format!(
                                "observe-only probe steered the run:\n  probed {probe}\n  plain  {plain_fp}"
                            ),
                        );
                    }
                }
                Err(e) => fail(
                    violations,
                    "engine-ok",
                    format!("probe-off rerun errored: {e}"),
                ),
            }
        }
    }
    if !(scenario.governor.enabled && scenario.governor.switch_policy) && plain.policy_switches != 0
    {
        fail(
            violations,
            "adapt-sane",
            format!(
                "{} policy switches with the meta-scheduler disabled",
                plain.policy_switches
            ),
        );
    }

    // QoS sanity.
    let q = &plain.qos;
    if q.count != plain.emitted {
        fail(
            violations,
            "qos-sane",
            format!(
                "qos counted {} emissions, report says {}",
                q.count, plain.emitted
            ),
        );
    }
    for (label, value) in [
        ("avg_response_ms", q.avg_response_ms),
        ("max_response_ms", q.max_response_ms),
        ("avg_slowdown", q.avg_slowdown),
        ("max_slowdown", q.max_slowdown),
        ("l2_slowdown", q.l2_slowdown),
    ] {
        if !value.is_finite() || value < 0.0 {
            fail(violations, "qos-sane", format!("{label} = {value}"));
        }
    }
    if q.count > 0 && (q.avg_slowdown < 1.0 || q.max_slowdown < 1.0) {
        fail(
            violations,
            "qos-sane",
            format!(
                "slowdown below 1 (avg {}, max {})",
                q.avg_slowdown, q.max_slowdown
            ),
        );
    }
    if q.max_response_ms + 1e-9 < q.avg_response_ms || q.max_slowdown + 1e-9 < q.avg_slowdown {
        fail(
            violations,
            "qos-sane",
            format!(
                "max below avg (response {} < {}, slowdown {} < {})",
                q.max_response_ms, q.avg_response_ms, q.max_slowdown, q.avg_slowdown
            ),
        );
    }

    // Virtual-time accounting.
    let charged = plain.busy_time + plain.overhead_time;
    if charged > plain.end_time {
        fail(
            violations,
            "accounting",
            format!(
                "busy {} + overhead {} exceeds end_time {}",
                plain.busy_time, plain.overhead_time, plain.end_time
            ),
        );
    }
    if plain.avg_pending > plain.peak_pending as f64 + 1e-9 || plain.avg_pending < 0.0 {
        fail(
            violations,
            "accounting",
            format!(
                "avg_pending {} outside [0, peak {}]",
                plain.avg_pending, plain.peak_pending
            ),
        );
    }

    // Traced run: timestamps are monotone, instrumentation is inert.
    match simulate_traced(
        plan,
        rates,
        vec![scenario.source()],
        build_policy(scenario, name),
        scenario.config(),
        VecTrace::new(),
    ) {
        Ok((report, trace)) => {
            let fp = fingerprint(&report);
            if fp != reference {
                fail(
                    violations,
                    "instrumentation-inert",
                    format!("tracing changed the run:\n  plain  {reference}\n  traced {fp}"),
                );
            }
            let mut last = hcq_common::Nanos::ZERO;
            for (i, ev) in trace.events.iter().enumerate() {
                let at = event_time(ev);
                if at < last {
                    fail(
                        violations,
                        "monotone-time",
                        format!("event {i} at {at} after {last}"),
                    );
                    break;
                }
                last = at;
            }
            if last > report.end_time {
                fail(
                    violations,
                    "monotone-time",
                    format!("last event at {last} beyond end_time {}", report.end_time),
                );
            }
        }
        Err(e) => fail(violations, "engine-ok", format!("traced run errored: {e}")),
    }

    // Monitored run: telemetry is inert and its final snapshot reconciles.
    match simulate_monitored(
        plan,
        rates,
        vec![scenario.source()],
        build_policy(scenario, name),
        scenario.config(),
        VecTelemetry::new(),
    ) {
        Ok((report, telemetry)) => {
            let fp = fingerprint(&report);
            if fp != reference {
                fail(
                    violations,
                    "instrumentation-inert",
                    format!(
                        "telemetry changed the run:\n  plain     {reference}\n  monitored {fp}"
                    ),
                );
            }
            match telemetry.samples.last() {
                None => fail(
                    violations,
                    "telemetry-reconciles",
                    "monitored run produced no snapshots".into(),
                ),
                Some(snap) => {
                    for (counter, expect) in [
                        ("hcq_arrivals_total", report.arrivals),
                        ("hcq_emitted_total", report.emitted),
                        ("hcq_dropped_total", report.dropped),
                        ("hcq_shed_total", report.shed),
                        ("hcq_expired_total", report.expired),
                        ("hcq_op_failures_total", report.op_failures),
                        (
                            "hcq_governor_transitions_total",
                            report.governor_transitions,
                        ),
                        ("hcq_sched_points_total", report.sched_points),
                    ] {
                        let got = snap.counter(counter);
                        if got != Some(expect) {
                            fail(
                                violations,
                                "telemetry-reconciles",
                                format!("{counter} = {got:?}, report says {expect}"),
                            );
                        }
                    }
                }
            }
        }
        Err(e) => fail(
            violations,
            "engine-ok",
            format!("monitored run errored: {e}"),
        ),
    }
}

/// Timestamp of any trace event.
fn event_time(ev: &TraceEvent) -> hcq_common::Nanos {
    match ev {
        TraceEvent::SchedulingPoint { at, .. }
        | TraceEvent::UnitRun { at, .. }
        | TraceEvent::Emit { at, .. }
        | TraceEvent::Shed { at, .. }
        | TraceEvent::Fault { at, .. }
        | TraceEvent::Expire { at, .. }
        | TraceEvent::GovernorTransition { at, .. }
        | TraceEvent::PolicySwitch { at, .. }
        | TraceEvent::OpFailure { at, .. } => *at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_paper_policies_plus_clustering() {
        let roster = policy_roster(4);
        assert_eq!(roster.len(), PolicyKind::ALL.len() + 2);
        assert!(roster.iter().any(|(n, _)| n == "C-BSD-log4"));
        assert!(roster.iter().any(|(n, _)| n == "C-BSD-uni4"));
    }

    #[test]
    fn small_generated_scenarios_are_clean() {
        // A handful of fixed cases as an inline smoke of the full suite —
        // the real sweep lives behind `repro fuzz`.
        for case in 0..4 {
            let s = Scenario::generate(11, case);
            let violations = check_scenario(&s);
            assert!(
                violations.is_empty(),
                "case {case} violated:\n{}",
                violations
                    .iter()
                    .map(|v| format!("  {v}\n"))
                    .collect::<String>()
            );
        }
    }

    #[test]
    fn broken_invariant_is_detected() {
        // Sanity-check the checker itself: force an impossible conservation
        // target by lying about the query count.
        let mut s = Scenario::generate(11, 0);
        s.queries.push(crate::scenario::QuerySpec::default());
        // An empty query can't build a plan; expect plan-valid to fire.
        let violations = check_scenario(&s);
        assert!(!violations.is_empty());
    }

    #[test]
    fn governed_qos_never_worse_than_worst_static_mode_when_calibrated() {
        // Calibrated overload workloads (no miscalibration/jitter/faults,
        // utilization > 1): the governor's average slowdown must not exceed
        // the worst static admission mode's, with 5% discretization slack.
        // Scoped to calibrated scenarios — under arbitrary fuzz dimensions
        // the comparison is not a theorem.
        use crate::scenario::{AdmissionPlan, GovernorPlan};
        use hcq_engine::simulate;
        use hcq_plan::StreamRates;
        for case in 0..6u64 {
            let mut s = Scenario::generate(29, case);
            s.cost_miscalibration = 0.0;
            s.cost_jitter = 0.0;
            s.faults = Default::default();
            s.op_failures = Default::default();
            s.disconnect = Default::default();
            s.deadline_ns = None;
            // Sustained overload: halve the gap.
            s.mean_gap_ns = (s.mean_gap_ns / 2).max(1);
            // Floor at Unbounded so the ladder is fully available, matching
            // the static alternatives below.
            s.admission = AdmissionPlan {
                mode: 0,
                capacity: 0,
                watermark: 0,
            };
            s.governor = GovernorPlan {
                enabled: true,
                cadence_ns: s.mean_gap_ns.saturating_mul(s.arrivals / 64).max(1),
                min_dwell_ns: s.mean_gap_ns.saturating_mul(s.arrivals / 16).max(1),
                escalate_pending: 32,
                deescalate_pending: 8,
                capacity: 8,
                watermark: 16,
                switch_policy: false,
            };
            let run = |s: &Scenario| {
                simulate(
                    &s.plan().unwrap(),
                    &StreamRates::none(),
                    vec![s.source()],
                    hcq_core::PolicyKind::Hnr.build(),
                    s.config(),
                )
                .unwrap()
                .qos
                .avg_slowdown
            };
            let governed = run(&s);
            let mut worst = 0.0f64;
            for admission in [
                AdmissionPlan {
                    mode: 0,
                    capacity: 0,
                    watermark: 0,
                },
                AdmissionPlan {
                    mode: 1,
                    capacity: 8,
                    watermark: 0,
                },
                AdmissionPlan {
                    mode: 2,
                    capacity: 8,
                    watermark: 16,
                },
            ] {
                let mut stat = s.clone();
                stat.governor = GovernorPlan::default();
                stat.admission = admission;
                worst = worst.max(run(&stat));
            }
            assert!(
                governed <= worst * 1.05,
                "case {case}: governed {governed} vs worst static {worst}"
            );
        }
    }

    #[test]
    fn adaptive_governed_qos_never_worse_when_calibrated() {
        // The closed loop closed twice over: governor AND online estimator
        // active on a calibrated overload workload. With nothing to learn
        // (statics start true and stay true), publishing re-estimates must
        // not lose QoS against the worst static admission mode either —
        // adaptation riding along cannot make the governed bound fail.
        use crate::scenario::{AdaptPlan, AdmissionPlan, GovernorPlan};
        use hcq_engine::simulate;
        use hcq_plan::StreamRates;
        for case in 0..4u64 {
            let mut s = Scenario::generate(31, case);
            s.cost_miscalibration = 0.0;
            s.cost_jitter = 0.0;
            s.faults = Default::default();
            s.op_failures = Default::default();
            s.disconnect = Default::default();
            s.deadline_ns = None;
            s.drift = Vec::new();
            s.mean_gap_ns = (s.mean_gap_ns / 2).max(1);
            s.admission = AdmissionPlan {
                mode: 0,
                capacity: 0,
                watermark: 0,
            };
            s.governor = GovernorPlan {
                enabled: true,
                cadence_ns: s.mean_gap_ns.saturating_mul(s.arrivals / 64).max(1),
                min_dwell_ns: s.mean_gap_ns.saturating_mul(s.arrivals / 16).max(1),
                escalate_pending: 32,
                deescalate_pending: 8,
                capacity: 8,
                watermark: 16,
                switch_policy: false,
            };
            s.adapt = AdaptPlan {
                enabled: true,
                mode: 0,
                alpha: 0.1,
                cadence_ns: s.mean_gap_ns.saturating_mul(s.arrivals / 32).max(1),
                min_observations: 2,
                publish: true,
            };
            let run = |s: &Scenario| {
                simulate(
                    &s.plan().unwrap(),
                    &StreamRates::none(),
                    vec![s.source()],
                    hcq_core::PolicyKind::Hnr.build(),
                    s.config(),
                )
                .unwrap()
                .qos
                .avg_slowdown
            };
            let adaptive = run(&s);
            let mut worst = 0.0f64;
            for admission in [
                AdmissionPlan {
                    mode: 0,
                    capacity: 0,
                    watermark: 0,
                },
                AdmissionPlan {
                    mode: 1,
                    capacity: 8,
                    watermark: 0,
                },
                AdmissionPlan {
                    mode: 2,
                    capacity: 8,
                    watermark: 16,
                },
            ] {
                let mut stat = s.clone();
                stat.governor = GovernorPlan::default();
                stat.adapt = AdaptPlan::default();
                stat.admission = admission;
                worst = worst.max(run(&stat));
            }
            assert!(
                adaptive <= worst * 1.05,
                "case {case}: adaptive governed {adaptive} vs worst static {worst}"
            );
        }
    }
}
