//! Regression replay of checked-in fuzz artifacts, plus an end-to-end drill
//! of the fail → shrink → artifact → replay pipeline.
//!
//! Every `tests/artifacts/fuzz-repro-*.json` file is a minimized scenario
//! that once exposed (or guards against re-introducing) a real bug — the
//! degenerate clustered-BSD priority domain, the zero-cost priority
//! blow-up. Replaying them runs the full invariant suite under every policy
//! and must come back clean forever after.

use std::path::Path;

use hcq_check::{parse_artifact, render_artifact, replay, shrink, Scenario, Violation};

fn artifact_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/artifacts")
}

#[test]
fn checked_in_artifacts_replay_clean() {
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(artifact_dir())
        .expect("tests/artifacts exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let scenario = parse_artifact(&text)
            .unwrap_or_else(|e| panic!("{}: unparseable artifact: {e}", path.display()));
        let violations = replay(&scenario);
        assert!(
            violations.is_empty(),
            "{} no longer replays clean:\n{}",
            path.display(),
            violations
                .iter()
                .map(|v| format!("  {v}\n"))
                .collect::<String>()
        );
        replayed += 1;
    }
    assert!(
        replayed >= 2,
        "expected the checked-in artifacts, found {replayed}"
    );
}

#[test]
fn broken_invariant_shrinks_to_a_replayable_artifact() {
    // End-to-end drill of the failure pipeline with a synthetic "invariant":
    // the predicate plays the role of a checker that any scenario with ≥ 2
    // queries or ≥ 8 arrivals violates. The shrinker must reduce the case
    // to that exact boundary, and the rendered artifact must replay — i.e.
    // parse back into the identical scenario and pass the real suite.
    let original = Scenario::generate(99, 5);
    assert!(original.arrivals >= 8, "seed chosen so the predicate fires");
    let fails = |s: &Scenario| s.queries.len() >= 2 || s.arrivals >= 8;
    let minimal = shrink(&original, &fails);
    assert!(fails(&minimal), "shrinking must preserve the failure");
    assert_eq!(minimal.queries.len(), 1);
    assert_eq!(minimal.arrivals, 8);
    assert!(minimal.faults.is_none());

    let violations = vec![Violation {
        policy: "HNR".into(),
        invariant: "synthetic",
        detail: "drill".into(),
    }];
    let text = render_artifact(&minimal, &violations);
    let back = parse_artifact(&text).expect("artifact parses");
    assert_eq!(back, minimal, "artifact round-trips the minimized scenario");
    // The minimized scenario is an ordinary valid scenario: the real
    // invariant suite accepts it.
    assert!(replay(&back).is_empty());
}
