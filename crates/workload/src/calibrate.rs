//! Utilization calibration (§8 "Costs").

#[cfg(test)]
use hcq_common::Nanos;
use hcq_common::StreamId;
use hcq_plan::{CompiledQuery, GlobalPlan, PlanStats, StreamRates};

/// A calibrated workload ready for simulation.
#[derive(Debug)]
pub struct PaperWorkload {
    /// The registered queries (and sharing groups, if any).
    pub plan: GlobalPlan,
    /// Mean inter-arrival times per stream (needed for §5 join statistics
    /// and recorded for reproducibility).
    pub rates: StreamRates,
    /// The distinct streams the plan reads.
    pub streams: Vec<StreamId>,
    /// The target utilization the costs were calibrated to.
    pub utilization: f64,
    /// The realized scaling: nanoseconds of operator cost per §8 cost unit
    /// (`K`, so a class-`i` operator costs `K·2^i`).
    pub k_ns: f64,
}

/// Total expected processing cost (ns) that one arrival on `stream` imposes
/// across all queries, honouring shared-operator de-duplication: a group of
/// `N` queries sharing `O_x` costs `Σ C̄_i − (N−1)·c_x` per tuple.
pub fn expected_cost_per_arrival_ns(
    plan: &GlobalPlan,
    rates: &StreamRates,
    stream: StreamId,
) -> f64 {
    let mut in_group = vec![false; plan.queries.len()];
    let mut total = 0.0;
    for g in &plan.sharing {
        for &m in &g.members {
            in_group[m.index()] = true;
        }
        if g.stream != stream {
            continue;
        }
        let sum: f64 = g
            .members
            .iter()
            .map(|&m| leaf_cost_ns(plan, rates, m.index(), 0))
            .sum();
        total += sum - (g.members.len() as f64 - 1.0) * g.op.cost.as_nanos() as f64;
    }
    for (qi, q) in plan.queries.iter().enumerate() {
        if in_group[qi] {
            continue;
        }
        for (li, s) in q.leaf_streams().iter().enumerate() {
            if *s == stream {
                total += leaf_cost_ns(plan, rates, qi, li);
            }
        }
    }
    total
}

fn leaf_cost_ns(plan: &GlobalPlan, rates: &StreamRates, query: usize, leaf: usize) -> f64 {
    let cq = CompiledQuery::compile(&plan.queries[query]);
    let stats = PlanStats::compute(&cq, rates)
        .expect("calibration runs on validated plans with known rates");
    stats.per_leaf[leaf].avg_cost_ns
}

/// The §8 scaling factor: given the expected per-arrival cost of the whole
/// query population measured at `K = 1` cost unit (`unit_cost_ns`, summed as
/// `Σ_streams cost_per_arrival/τ` — i.e. expected busy time per nanosecond),
/// return the factor that makes offered load equal `utilization`.
pub fn scale_for_utilization(busy_per_ns_at_unit: f64, utilization: f64) -> f64 {
    assert!(busy_per_ns_at_unit > 0.0, "workload must do some work");
    assert!(utilization > 0.0, "utilization must be positive");
    utilization / busy_per_ns_at_unit
}

/// Offered load of a calibrated plan: `Σ_streams cost_per_arrival(s)/τ_s`.
pub fn offered_load(plan: &GlobalPlan, rates: &StreamRates) -> f64 {
    plan.streams()
        .into_iter()
        .map(|s| {
            let tau = rates
                .tau(s)
                .expect("every referenced stream has a configured rate")
                .as_nanos() as f64;
            expected_cost_per_arrival_ns(plan, rates, s) / tau
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcq_plan::QueryBuilder;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn per_arrival_cost_of_two_plain_queries() {
        let mut plan = GlobalPlan::default();
        for _ in 0..2 {
            plan.add_query(
                QueryBuilder::on(StreamId::new(0))
                    .select(ms(1), 0.5)
                    .stored_join(ms(1), 0.5)
                    .project(ms(1))
                    .build()
                    .unwrap(),
            );
        }
        let rates = StreamRates::none().with(StreamId::new(0), ms(10));
        // per query: 1 + 0.5 + 0.25 = 1.75 ms
        let got = expected_cost_per_arrival_ns(&plan, &rates, StreamId::new(0));
        assert!((got - 2.0 * 1.75e6).abs() < 1.0);
        assert!((offered_load(&plan, &rates) - 3.5e6 / 10e6).abs() < 1e-9);
    }

    #[test]
    fn sharing_dedupes_the_shared_cost() {
        let mut plan = GlobalPlan::default();
        let members: Vec<_> = (0..3)
            .map(|_| {
                plan.add_query(
                    QueryBuilder::on(StreamId::new(0))
                        .select(ms(2), 0.5)
                        .project(ms(4))
                        .build()
                        .unwrap(),
                )
            })
            .collect();
        plan.share_first_op(members).unwrap();
        let rates = StreamRates::none().with(StreamId::new(0), ms(10));
        // per member C̄ = 2 + 0.5·4 = 4ms; group = 3·4 − 2·2 = 8ms.
        let got = expected_cost_per_arrival_ns(&plan, &rates, StreamId::new(0));
        assert!((got - 8.0e6).abs() < 1.0, "{got}");
    }

    #[test]
    fn scale_math() {
        assert!((scale_for_utilization(0.5, 1.0) - 2.0).abs() < 1e-12);
        assert!((scale_for_utilization(2.0, 0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "some work")]
    fn zero_work_rejected() {
        let _ = scale_for_utilization(0.0, 0.5);
    }

    #[test]
    fn other_stream_costs_nothing() {
        let mut plan = GlobalPlan::default();
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(ms(1), 0.5)
                .build()
                .unwrap(),
        );
        let rates = StreamRates::none().with(StreamId::new(0), ms(10));
        assert_eq!(
            expected_cost_per_arrival_ns(&plan, &rates, StreamId::new(3)),
            0.0
        );
    }
}
