//! Workload construction.

use hcq_common::{HcqError, Nanos, Result, StreamId};
use hcq_plan::{GlobalPlan, QueryBuilder, QueryTag, StreamRates};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calibrate::{offered_load, scale_for_utilization, PaperWorkload};

/// §8 single-stream population: select → stored-relation join → project.
#[derive(Debug, Clone)]
pub struct SingleStreamConfig {
    /// Registered queries (the paper uses 500).
    pub queries: usize,
    /// Number of cost classes (`i ∈ [0, classes)`, cost `K·2^i`; paper: 5).
    pub cost_classes: u8,
    /// Target utilization.
    pub utilization: f64,
    /// Mean inter-arrival time of the input stream.
    pub mean_gap: Nanos,
    /// Seed for parameter draws.
    pub seed: u64,
}

impl SingleStreamConfig {
    /// Paper-scale defaults at a given utilization / inter-arrival time.
    pub fn paper(utilization: f64, mean_gap: Nanos) -> Self {
        SingleStreamConfig {
            queries: 500,
            cost_classes: 5,
            utilization,
            mean_gap,
            seed: 0x5eed,
        }
    }
}

/// Draws for one query, in §8 units (selectivity, cost class).
#[derive(Debug, Clone, Copy)]
struct QueryDraw {
    selectivity: f64,
    cost_class: u8,
}

fn draw(rng: &mut StdRng, cost_classes: u8) -> QueryDraw {
    QueryDraw {
        // Uniform in [0.1, 1.0] (§8 "Selectivities").
        selectivity: 0.1 + 0.9 * rng.random::<f64>(),
        cost_class: rng.random_range(0..cost_classes),
    }
}

fn tag(d: QueryDraw) -> QueryTag {
    QueryTag {
        cost_class: d.cost_class,
        selectivity_bucket: QueryTag::bucket_selectivity(d.selectivity),
    }
}

fn class_cost(k_ns: f64, class: u8) -> Nanos {
    Nanos::from_nanos(((k_ns * f64::from(1u32 << class)).round() as u64).max(1))
}

/// Build the single-stream workload on stream 0, calibrated so that the
/// offered load equals `cfg.utilization`.
pub fn single_stream(cfg: &SingleStreamConfig) -> Result<PaperWorkload> {
    validate(cfg.queries, cfg.cost_classes, cfg.utilization)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let draws: Vec<QueryDraw> = (0..cfg.queries)
        .map(|_| draw(&mut rng, cfg.cost_classes))
        .collect();
    let stream = StreamId::new(0);
    let rates = StreamRates::none().with(stream, cfg.mean_gap);

    let build = |k_ns: f64| -> Result<GlobalPlan> {
        let mut plan = GlobalPlan::default();
        for d in &draws {
            let c = class_cost(k_ns, d.cost_class);
            plan.add_query(
                QueryBuilder::on(stream)
                    .select(c, d.selectivity)
                    .stored_join(c, d.selectivity)
                    .project(c)
                    .tag(tag(*d))
                    .build()?,
            );
        }
        Ok(plan)
    };

    // Two passes: measure the load of the unit-cost plan, then rescale.
    let unit = Nanos::from_micros(1).as_nanos() as f64;
    let probe = build(unit)?;
    let k_ns = unit * scale_for_utilization(offered_load(&probe, &rates), cfg.utilization);
    let plan = build(k_ns)?;
    Ok(PaperWorkload {
        plan,
        rates,
        streams: vec![stream],
        utilization: cfg.utilization,
        k_ns,
    })
}

/// §9.1.7 multi-stream population: window join of two selected streams.
#[derive(Debug, Clone)]
pub struct MultiStreamConfig {
    /// Registered queries.
    pub queries: usize,
    /// Cost classes (as in [`SingleStreamConfig`]).
    pub cost_classes: u8,
    /// Target utilization.
    pub utilization: f64,
    /// Mean inter-arrival time of *each* of the two streams.
    pub mean_gap: Nanos,
    /// Window interval range (the paper draws 1–10 s uniformly).
    pub window_range: (Nanos, Nanos),
    /// Seed for parameter draws.
    pub seed: u64,
}

impl MultiStreamConfig {
    /// Paper-shaped defaults.
    pub fn paper(utilization: f64, mean_gap: Nanos) -> Self {
        MultiStreamConfig {
            queries: 100,
            cost_classes: 5,
            utilization,
            mean_gap,
            window_range: (Nanos::from_secs(1), Nanos::from_secs(10)),
            seed: 0x5eed,
        }
    }
}

/// Build the two-stream window-join workload on streams 0 and 1.
///
/// Each query is `σ(M0) ⋈_V σ(M1) → π`: selects on both inputs, a window
/// join with window drawn uniform from `window_range`, a final project; all
/// operators of a query share its class cost and (select/join) selectivity,
/// matching the §8 class structure.
pub fn multi_stream(cfg: &MultiStreamConfig) -> Result<PaperWorkload> {
    validate(cfg.queries, cfg.cost_classes, cfg.utilization)?;
    if cfg.window_range.0 > cfg.window_range.1 || cfg.window_range.0.is_zero() {
        return Err(HcqError::config("invalid window range"));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let draws: Vec<(QueryDraw, Nanos)> = (0..cfg.queries)
        .map(|_| {
            let d = draw(&mut rng, cfg.cost_classes);
            let w = rng.random_range(cfg.window_range.0.as_nanos()..=cfg.window_range.1.as_nanos());
            (d, Nanos::from_nanos(w))
        })
        .collect();
    let (left, right) = (StreamId::new(0), StreamId::new(1));
    let rates = StreamRates::none()
        .with(left, cfg.mean_gap)
        .with(right, cfg.mean_gap);

    let build = |k_ns: f64| -> Result<GlobalPlan> {
        let mut plan = GlobalPlan::default();
        for (d, window) in &draws {
            let c = class_cost(k_ns, d.cost_class);
            plan.add_query(
                QueryBuilder::on(left)
                    .select(c, d.selectivity)
                    .window_join(
                        QueryBuilder::on(right).select(c, d.selectivity),
                        c,
                        d.selectivity,
                        *window,
                    )
                    .project(c)
                    .tag(tag(*d))
                    .build()?,
            );
        }
        Ok(plan)
    };

    let unit = Nanos::from_micros(1).as_nanos() as f64;
    let probe = build(unit)?;
    let k_ns = unit * scale_for_utilization(offered_load(&probe, &rates), cfg.utilization);
    let plan = build(k_ns)?;
    Ok(PaperWorkload {
        plan,
        rates,
        streams: vec![left, right],
        utilization: cfg.utilization,
        k_ns,
    })
}

/// §9.3 shared-operator population: groups of queries sharing their select.
#[derive(Debug, Clone)]
pub struct SharedConfig {
    /// Number of groups (the paper uses 50 groups of 10 = 500 queries).
    pub groups: usize,
    /// Queries per group (paper: 10).
    pub group_size: usize,
    /// Cost classes.
    pub cost_classes: u8,
    /// Target utilization.
    pub utilization: f64,
    /// Mean inter-arrival time of the input stream.
    pub mean_gap: Nanos,
    /// Seed for parameter draws.
    pub seed: u64,
}

impl SharedConfig {
    /// Paper-shaped defaults.
    pub fn paper(utilization: f64, mean_gap: Nanos) -> Self {
        SharedConfig {
            groups: 50,
            group_size: 10,
            cost_classes: 5,
            utilization,
            mean_gap,
            seed: 0x5eed,
        }
    }
}

/// Build the shared-select workload on stream 0.
///
/// Each group's select operator (one cost class + selectivity draw) is
/// physically shared by its `group_size` members; each member then has its
/// own stored-relation join and project with per-member class cost and
/// selectivity — "costs and selectivities assigned uniformly as before"
/// (§9.3), with the shared select necessarily identical within a group.
pub fn shared(cfg: &SharedConfig) -> Result<PaperWorkload> {
    validate(
        cfg.groups * cfg.group_size,
        cfg.cost_classes,
        cfg.utilization,
    )?;
    if cfg.group_size == 0 {
        return Err(HcqError::config("group_size must be positive"));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let group_draws: Vec<QueryDraw> = (0..cfg.groups)
        .map(|_| draw(&mut rng, cfg.cost_classes))
        .collect();
    let member_draws: Vec<Vec<QueryDraw>> = (0..cfg.groups)
        .map(|_| {
            (0..cfg.group_size)
                .map(|_| draw(&mut rng, cfg.cost_classes))
                .collect()
        })
        .collect();
    let stream = StreamId::new(0);
    let rates = StreamRates::none().with(stream, cfg.mean_gap);

    let build = |k_ns: f64| -> Result<GlobalPlan> {
        let mut plan = GlobalPlan::default();
        for (g, gd) in group_draws.iter().enumerate() {
            let shared_cost = class_cost(k_ns, gd.cost_class);
            let members: Vec<_> = member_draws[g]
                .iter()
                .map(|md| {
                    let c = class_cost(k_ns, md.cost_class);
                    plan.add_query(
                        QueryBuilder::on(stream)
                            .select(shared_cost, gd.selectivity)
                            .stored_join(c, md.selectivity)
                            .project(c)
                            .tag(tag(*md))
                            .build()
                            .expect("valid by construction"),
                    )
                })
                .collect();
            plan.share_first_op(members)?;
        }
        Ok(plan)
    };

    let unit = Nanos::from_micros(1).as_nanos() as f64;
    let probe = build(unit)?;
    let k_ns = unit * scale_for_utilization(offered_load(&probe, &rates), cfg.utilization);
    let plan = build(k_ns)?;
    Ok(PaperWorkload {
        plan,
        rates,
        streams: vec![stream],
        utilization: cfg.utilization,
        k_ns,
    })
}

fn validate(queries: usize, cost_classes: u8, utilization: f64) -> Result<()> {
    if queries == 0 {
        return Err(HcqError::config("need at least one query"));
    }
    if cost_classes == 0 || cost_classes > 16 {
        return Err(HcqError::config("cost_classes must be in 1..=16"));
    }
    if !(utilization.is_finite() && utilization > 0.0) {
        return Err(HcqError::config("utilization must be positive"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::offered_load;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn single_stream_calibrates_to_target() {
        for util in [0.3, 0.7, 0.97] {
            let w = single_stream(&SingleStreamConfig {
                queries: 60,
                cost_classes: 5,
                utilization: util,
                mean_gap: ms(10),
                seed: 1,
            })
            .unwrap();
            let load = offered_load(&w.plan, &w.rates);
            assert!(
                (load - util).abs() / util < 0.01,
                "target {util}, offered {load}"
            );
            assert_eq!(w.plan.len(), 60);
        }
    }

    #[test]
    fn single_stream_has_classed_costs_and_tags() {
        let w = single_stream(&SingleStreamConfig {
            queries: 200,
            cost_classes: 5,
            utilization: 0.5,
            mean_gap: ms(10),
            seed: 2,
        })
        .unwrap();
        let mut classes_seen = [false; 5];
        for q in &w.plan.queries {
            classes_seen[q.tag.cost_class as usize] = true;
            assert!(q.is_single_stream());
            assert_eq!(q.operator_count(), 3);
        }
        assert!(classes_seen.iter().all(|&b| b), "all 5 classes drawn");
    }

    #[test]
    fn multi_stream_calibrates_and_uses_windows() {
        let w = multi_stream(&MultiStreamConfig {
            queries: 30,
            cost_classes: 5,
            utilization: 0.8,
            mean_gap: ms(100),
            window_range: (Nanos::from_secs(1), Nanos::from_secs(10)),
            seed: 3,
        })
        .unwrap();
        let load = offered_load(&w.plan, &w.rates);
        assert!((load - 0.8).abs() < 0.02, "offered {load}");
        assert!(w.plan.queries.iter().all(|q| q.leaf_count() == 2));
        assert_eq!(w.streams.len(), 2);
    }

    #[test]
    fn shared_builds_groups_and_calibrates() {
        let w = shared(&SharedConfig {
            groups: 6,
            group_size: 10,
            cost_classes: 5,
            utilization: 0.6,
            mean_gap: ms(10),
            seed: 4,
        })
        .unwrap();
        assert_eq!(w.plan.len(), 60);
        assert_eq!(w.plan.sharing.len(), 6);
        w.plan.validate().unwrap();
        let load = offered_load(&w.plan, &w.rates);
        assert!((load - 0.6).abs() < 0.01, "offered {load}");
    }

    #[test]
    fn draws_are_seed_deterministic() {
        let a = single_stream(&SingleStreamConfig::paper(0.5, ms(10))).unwrap();
        let b = single_stream(&SingleStreamConfig::paper(0.5, ms(10))).unwrap();
        assert_eq!(a.plan.queries.len(), b.plan.queries.len());
        for (qa, qb) in a.plan.queries.iter().zip(&b.plan.queries) {
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn config_validation() {
        assert!(single_stream(&SingleStreamConfig {
            queries: 0,
            ..SingleStreamConfig::paper(0.5, ms(10))
        })
        .is_err());
        assert!(single_stream(&SingleStreamConfig {
            utilization: -1.0,
            ..SingleStreamConfig::paper(0.5, ms(10))
        })
        .is_err());
        assert!(multi_stream(&MultiStreamConfig {
            window_range: (Nanos::from_secs(2), Nanos::from_secs(1)),
            ..MultiStreamConfig::paper(0.5, ms(10))
        })
        .is_err());
        assert!(shared(&SharedConfig {
            group_size: 0,
            ..SharedConfig::paper(0.5, ms(10))
        })
        .is_err());
    }

    #[test]
    fn utilization_scales_costs_linearly() {
        let lo = single_stream(&SingleStreamConfig {
            utilization: 0.4,
            ..SingleStreamConfig::paper(0.4, ms(10))
        })
        .unwrap();
        let hi = single_stream(&SingleStreamConfig {
            utilization: 0.8,
            ..SingleStreamConfig::paper(0.8, ms(10))
        })
        .unwrap();
        assert!((hi.k_ns / lo.k_ns - 2.0).abs() < 1e-6);
    }
}
