//! The §8 evaluation testbed.
//!
//! Queries follow the structure of \[Chen et al., ICDE'02\] and
//! \[Madden et al., SIGMOD'02\]: **select → join → project**. Selectivities
//! of the select and join operators are drawn uniform in `[0.1, 1.0]`, with
//! *the same selectivity for operators of the same query* so that query
//! classes form a controllable grid (§8 "Selectivities"). Costs come in five
//! classes: every operator of a class-`i` query costs `K·2^i` time units,
//! `i ∈ [0,4]` (§8 "Costs").
//!
//! The scaling factor `K` is set exactly as the paper prescribes: measure
//! the stream's mean inter-arrival time `τ`, then choose `K` so that the
//! ratio between the total expected per-arrival cost of all queries and `τ`
//! equals the simulated utilization.
//!
//! Three §9 workload variants:
//!
//! * [`single_stream`] — 500 single-stream SJP queries (join with a stored
//!   relation), Figures 5–11, 13, 14;
//! * [`multi_stream`] — two-input window-join queries, Poisson arrivals,
//!   windows 1–10 s, Figure 12;
//! * [`shared`] — queries grouped in sets of 10 sharing their select
//!   operator, Table 2.

pub mod build;
pub mod calibrate;

pub use build::{
    multi_stream, shared, single_stream, MultiStreamConfig, SharedConfig, SingleStreamConfig,
};
pub use calibrate::{expected_cost_per_arrival_ns, PaperWorkload};
