//! Flattened (compiled) query plans.
//!
//! The tree form ([`crate::PlanNode`]) is convenient to build and validate;
//! execution and statistics want a flat array of operators with explicit
//! downstream wiring. Compilation performs a post-order walk, so **every
//! operator's downstream has a strictly greater index** — forward passes in
//! index order are topological, backward passes reverse-topological. Several
//! invariants in this module and `stats` rely on that ordering.

use hcq_common::StreamId;

use crate::node::{LeafIndex, PlanNode};
use crate::operator::{JoinSpec, OperatorSpec};
use crate::query::QueryPlan;

/// Which input port of a downstream operator a tuple flows into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// The only input of a unary operator.
    Single,
    /// Left input of a window join.
    Left,
    /// Right input of a window join.
    Right,
}

/// A compiled operator: its spec plus downstream wiring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledOp {
    /// The operator's behaviour and parameters.
    pub kind: CompiledOpKind,
    /// Where output tuples go: `(local op index, port)`, or `None` for the
    /// query root (tuples are emitted to the user).
    pub downstream: Option<(usize, Port)>,
}

/// Compiled operator behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompiledOpKind {
    /// A unary operator.
    Unary(OperatorSpec),
    /// A sliding-window join.
    Join(JoinSpec),
}

impl CompiledOp {
    /// Processing cost per input tuple.
    pub fn cost(&self) -> hcq_common::Nanos {
        match &self.kind {
            CompiledOpKind::Unary(op) => op.cost,
            CompiledOpKind::Join(j) => j.cost,
        }
    }

    /// True for window joins.
    pub fn is_join(&self) -> bool {
        matches!(self.kind, CompiledOpKind::Join(_))
    }
}

/// A compiled leaf: where tuples from a stream enter the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledLeaf {
    /// The feeding stream.
    pub stream: StreamId,
    /// Entry point: the first operator on the leaf's path and the port on
    /// which the tuple arrives (a join port when the leaf chain is empty).
    pub entry: (usize, Port),
}

/// A query plan flattened for execution and statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    /// Operators in reverse-topological construction order (downstream
    /// indices strictly increase along any path).
    pub ops: Vec<CompiledOp>,
    /// Entry points, in left-to-right leaf order (matching
    /// [`PlanNode::leaf_streams`]).
    pub leaves: Vec<CompiledLeaf>,
}

impl CompiledQuery {
    /// Flatten a query plan.
    pub fn compile(plan: &QueryPlan) -> Self {
        let mut ops = Vec::with_capacity(plan.operator_count());
        let mut leaves = Vec::with_capacity(plan.leaf_count());
        let exit = flatten(&plan.root, &mut ops, &mut leaves);
        debug_assert!(
            exit.is_some() || ops.is_empty(),
            "non-empty plan must have an exit operator"
        );
        // Resolve leaves whose entry could not be known during recursion
        // (empty leaf chains get wired by their parent join inside
        // `flatten`), then sanity-check wiring.
        debug_assert!(leaves.iter().all(|l| l.entry.0 < ops.len()));
        CompiledQuery { ops, leaves }
    }

    /// The leaf entry for a given leaf index.
    pub fn leaf(&self, leaf: LeafIndex) -> &CompiledLeaf {
        &self.leaves[leaf.index()]
    }

    /// Ideal total processing time `T_k` (Definition 3 / Definition 6):
    /// every unary operator's cost once, every join operator's cost twice
    /// (once for each constituent tuple's hash/insert/probe work).
    pub fn ideal_time(&self) -> hcq_common::Nanos {
        self.ops
            .iter()
            .map(|op| match &op.kind {
                CompiledOpKind::Unary(u) => u.cost,
                CompiledOpKind::Join(j) => j.cost * 2,
            })
            .sum()
    }

    /// Ideal "alone" latency for a tuple entering at `leaf`: the virtual time
    /// it takes the tuple's own work to reach the root in an otherwise empty
    /// system, assuming each join partner is already in the opposite hash
    /// table. Unary operators on the path cost `c` each; each join on the
    /// path costs `c_J` **once** — this constituent's own hash/insert/probe
    /// (the partner's `c_J` happened on the partner's path, which is why
    /// `T_k` counts each join twice but a single path does not).
    ///
    /// The §5.1.2 ideal departure of a composite tuple is then
    /// `D_ideal = max over constituents (A_i + alone_cost(leaf_i))`, and
    /// `H = 1 + (D_actual − D_ideal)/T_k ≥ 1` always, because every
    /// constituent's path work must happen after that constituent arrives.
    /// For a single-stream query `alone_cost = T_k`, which collapses the
    /// composite formula to the plain Definition 2 slowdown `R/T`.
    pub fn alone_cost(&self, leaf: LeafIndex) -> hcq_common::Nanos {
        let mut cost = hcq_common::Nanos::ZERO;
        let mut cursor = Some(self.leaves[leaf.index()].entry);
        while let Some((idx, _port)) = cursor {
            let op = &self.ops[idx];
            cost += op.cost();
            cursor = op.downstream;
        }
        cost
    }

    /// Iterate over the operator indices on the path from `leaf` to the root
    /// (inclusive), in flow order.
    pub fn path(&self, leaf: LeafIndex) -> impl Iterator<Item = usize> + '_ {
        let mut cursor = Some(self.leaves[leaf.index()].entry);
        std::iter::from_fn(move || {
            let (idx, _) = cursor?;
            cursor = self.ops[idx].downstream;
            Some(idx)
        })
    }

    /// Indices of all join operators.
    pub fn join_indices(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_join())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Post-order flattening. Returns the index of the subtree's exit operator
/// (the operator producing the subtree's output), or `None` for an empty
/// leaf chain (raw stream).
fn flatten(
    node: &PlanNode,
    ops: &mut Vec<CompiledOp>,
    leaves: &mut Vec<CompiledLeaf>,
) -> Option<usize> {
    match node {
        PlanNode::Leaf { stream, ops: chain } => {
            if chain.is_empty() {
                // Raw stream feeding a parent join; the parent resolves the
                // leaf's entry when it knows its own index. Push a sentinel
                // the parent will overwrite (entry index 0 is a placeholder).
                leaves.push(CompiledLeaf {
                    stream: *stream,
                    entry: (usize::MAX, Port::Single),
                });
                return None;
            }
            let first = ops.len();
            for (i, spec) in chain.iter().enumerate() {
                ops.push(CompiledOp {
                    kind: CompiledOpKind::Unary(*spec),
                    downstream: if i + 1 < chain.len() {
                        Some((first + i + 1, Port::Single))
                    } else {
                        None // wired by parent (or stays root)
                    },
                });
            }
            leaves.push(CompiledLeaf {
                stream: *stream,
                entry: (first, Port::Single),
            });
            Some(ops.len() - 1)
        }
        PlanNode::Join {
            left,
            right,
            join,
            ops: common,
        } => {
            let left_leaf_start = leaves.len();
            let left_exit = flatten(left, ops, leaves);
            let right_leaf_start = leaves.len();
            let right_exit = flatten(right, ops, leaves);
            let join_idx = ops.len();
            ops.push(CompiledOp {
                kind: CompiledOpKind::Join(*join),
                downstream: None,
            });
            // Wire children into the join's ports.
            wire(
                ops,
                leaves,
                left_exit,
                left_leaf_start,
                (join_idx, Port::Left),
            );
            wire(
                ops,
                leaves,
                right_exit,
                right_leaf_start,
                (join_idx, Port::Right),
            );
            // Common segment.
            let mut exit = join_idx;
            for spec in common {
                let idx = ops.len();
                ops.push(CompiledOp {
                    kind: CompiledOpKind::Unary(*spec),
                    downstream: None,
                });
                ops[exit].downstream = Some((idx, Port::Single));
                exit = idx;
            }
            Some(exit)
        }
    }
}

/// Connect a child subtree's output to `target`: either by wiring its exit
/// operator's downstream, or — for a raw-stream leaf — by resolving the
/// pending leaf entry.
fn wire(
    ops: &mut [CompiledOp],
    leaves: &mut [CompiledLeaf],
    exit: Option<usize>,
    leaf_start: usize,
    target: (usize, Port),
) {
    match exit {
        Some(e) => ops[e].downstream = Some(target),
        None => {
            // The child was an empty leaf chain; it pushed exactly one
            // pending leaf at `leaf_start`.
            debug_assert_eq!(leaves[leaf_start].entry.0, usize::MAX);
            leaves[leaf_start].entry = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcq_common::Nanos;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    fn single(n_ops: usize) -> QueryPlan {
        QueryPlan::new(PlanNode::Leaf {
            stream: StreamId::new(0),
            ops: (0..n_ops)
                .map(|i| OperatorSpec::select(ms(i as u64 + 1), 0.5))
                .collect(),
        })
        .unwrap()
    }

    fn two_stream(left_ops: usize, right_ops: usize, common: usize) -> QueryPlan {
        QueryPlan::new(PlanNode::Join {
            left: Box::new(PlanNode::Leaf {
                stream: StreamId::new(0),
                ops: (0..left_ops)
                    .map(|_| OperatorSpec::select(ms(1), 0.5))
                    .collect(),
            }),
            right: Box::new(PlanNode::Leaf {
                stream: StreamId::new(1),
                ops: (0..right_ops)
                    .map(|_| OperatorSpec::select(ms(2), 0.5))
                    .collect(),
            }),
            join: JoinSpec::new(ms(3), 0.5, Nanos::from_secs(1)),
            ops: (0..common).map(|_| OperatorSpec::project(ms(4))).collect(),
        })
        .unwrap()
    }

    #[test]
    fn single_stream_chain_wiring() {
        let cq = CompiledQuery::compile(&single(3));
        assert_eq!(cq.ops.len(), 3);
        assert_eq!(cq.leaves.len(), 1);
        assert_eq!(cq.leaves[0].entry, (0, Port::Single));
        assert_eq!(cq.ops[0].downstream, Some((1, Port::Single)));
        assert_eq!(cq.ops[1].downstream, Some((2, Port::Single)));
        assert_eq!(cq.ops[2].downstream, None);
        assert_eq!(cq.path(LeafIndex(0)).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn two_stream_wiring() {
        let cq = CompiledQuery::compile(&two_stream(1, 1, 1));
        // layout: [left select, right select, join, project]
        assert_eq!(cq.ops.len(), 4);
        assert_eq!(cq.leaves.len(), 2);
        assert_eq!(cq.ops[0].downstream, Some((2, Port::Left)));
        assert_eq!(cq.ops[1].downstream, Some((2, Port::Right)));
        assert!(cq.ops[2].is_join());
        assert_eq!(cq.ops[2].downstream, Some((3, Port::Single)));
        assert_eq!(cq.ops[3].downstream, None);
        assert_eq!(cq.path(LeafIndex(1)).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn raw_stream_leaf_enters_join_port() {
        let cq = CompiledQuery::compile(&two_stream(0, 0, 0));
        assert_eq!(cq.ops.len(), 1);
        assert_eq!(cq.leaves[0].entry, (0, Port::Left));
        assert_eq!(cq.leaves[1].entry, (0, Port::Right));
    }

    #[test]
    fn downstream_indices_strictly_increase() {
        let plans = [single(4), two_stream(2, 3, 2), two_stream(0, 1, 0)];
        for plan in &plans {
            let cq = CompiledQuery::compile(plan);
            for (i, op) in cq.ops.iter().enumerate() {
                if let Some((d, _)) = op.downstream {
                    assert!(d > i, "op {i} feeds earlier op {d}");
                }
            }
        }
    }

    #[test]
    fn ideal_time_counts_joins_twice() {
        let cq = CompiledQuery::compile(&two_stream(1, 1, 1));
        // 1 + 2 + 2*3 + 4 = 13 ms
        assert_eq!(cq.ideal_time(), ms(13));
        let cq1 = CompiledQuery::compile(&single(2));
        assert_eq!(cq1.ideal_time(), ms(3));
    }

    #[test]
    fn alone_cost_counts_joins_once() {
        let cq = CompiledQuery::compile(&two_stream(1, 1, 1));
        // left: 1 + 3 + 4 = 8ms; right: 2 + 3 + 4 = 9ms.
        assert_eq!(cq.alone_cost(LeafIndex(0)), ms(8));
        assert_eq!(cq.alone_cost(LeafIndex(1)), ms(9));
    }

    #[test]
    fn alone_cost_equals_ideal_time_without_joins() {
        let cq = CompiledQuery::compile(&single(3));
        assert_eq!(cq.alone_cost(LeafIndex(0)), cq.ideal_time());
    }

    #[test]
    fn nested_join_flattens() {
        let plan = QueryPlan::new(PlanNode::Join {
            left: Box::new(PlanNode::Join {
                left: Box::new(PlanNode::Leaf {
                    stream: StreamId::new(0),
                    ops: vec![OperatorSpec::select(ms(1), 0.5)],
                }),
                right: Box::new(PlanNode::Leaf {
                    stream: StreamId::new(1),
                    ops: vec![],
                }),
                join: JoinSpec::new(ms(2), 0.5, Nanos::from_secs(1)),
                ops: vec![],
            }),
            right: Box::new(PlanNode::Leaf {
                stream: StreamId::new(2),
                ops: vec![OperatorSpec::select(ms(1), 0.5)],
            }),
            join: JoinSpec::new(ms(3), 0.5, Nanos::from_secs(1)),
            ops: vec![OperatorSpec::project(ms(1))],
        })
        .unwrap();
        let cq = CompiledQuery::compile(&plan);
        assert_eq!(cq.leaves.len(), 3);
        assert_eq!(cq.join_indices().len(), 2);
        // T = 1 + 1 + 1 + 2*2 + 2*3 = 13 ms
        assert_eq!(cq.ideal_time(), ms(13));
        // middle leaf (raw stream) enters inner join's right port
        let inner_join = cq.leaves[1].entry.0;
        assert!(cq.ops[inner_join].is_join());
        assert_eq!(cq.leaves[1].entry.1, Port::Right);
        // every path reaches the root (the final project)
        for l in 0..3 {
            let last = cq.path(LeafIndex(l)).last().unwrap();
            assert_eq!(cq.ops[last].downstream, None);
        }
    }
}
