//! Continuous-query plan model.
//!
//! A continuous query is a tree of operators (§2 of the paper): unary
//! operators (select / project / stored-relation join) arranged in chains,
//! optionally combined by time-based sliding-window join operators into
//! multi-stream plans. This crate provides:
//!
//! * [`OperatorSpec`] / [`JoinSpec`] — the per-operator parameters the whole
//!   paper is built on: processing cost `c` and selectivity `s`.
//! * [`PlanNode`] / [`QueryPlan`] — plan trees (arbitrary join nesting) with
//!   structural validation.
//! * [`stats`] — the derived quantities every scheduling policy consumes:
//!   operator **global selectivity** `S_x`, **global average cost** `C̄_x`,
//!   and the per-query **ideal tuple processing time** `T_k`, including the
//!   §5 window-join extensions that estimate expected matches via
//!   `S_other · V/τ_other`.
//! * [`GlobalPlan`] — a registered multi-query workload, with §7-style shared
//!   select operators.
//! * [`builder`] — ergonomic construction, and [`dot`] — Graphviz export.

pub mod builder;
pub mod compiled;
pub mod dot;
pub mod global;
pub mod node;
pub mod operator;
pub mod stats;

mod query;

pub use builder::QueryBuilder;
pub use compiled::{CompiledLeaf, CompiledOp, CompiledOpKind, CompiledQuery, Port};
pub use dot::{global_to_dot, to_dot};
pub use global::{GlobalPlan, SharedSelect};
pub use node::{LeafIndex, PlanNode};
pub use operator::{JoinSpec, OpKind, OperatorSpec};
pub use query::{QueryPlan, QueryTag};
pub use stats::{LeafSegmentStats, OpSegStats, PlanStats, SegStats, StreamRates};
