//! Ergonomic query construction.
//!
//! ```
//! use hcq_plan::QueryBuilder;
//! use hcq_common::{Nanos, StreamId};
//!
//! // A single-stream select–join–project query (the §8 workload shape).
//! let q = QueryBuilder::on(StreamId::new(0))
//!     .select(Nanos::from_millis(1), 0.5)
//!     .stored_join(Nanos::from_millis(1), 0.5)
//!     .project(Nanos::from_millis(1))
//!     .build()
//!     .unwrap();
//! assert!(q.is_single_stream());
//!
//! // A two-stream window-join query (Figure 3 shape).
//! let left = QueryBuilder::on(StreamId::new(0)).select(Nanos::from_millis(1), 0.8);
//! let right = QueryBuilder::on(StreamId::new(1)).select(Nanos::from_millis(1), 0.6);
//! let q = left
//!     .window_join(right, Nanos::from_millis(2), 0.1, Nanos::from_secs(5))
//!     .project(Nanos::from_millis(1))
//!     .build()
//!     .unwrap();
//! assert_eq!(q.leaf_count(), 2);
//! ```

use hcq_common::{Nanos, Result, StreamId};

use crate::node::PlanNode;
use crate::operator::{JoinSpec, OpKind, OperatorSpec};
use crate::query::{QueryPlan, QueryTag};

/// Fluent builder for [`QueryPlan`]s.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    node: PlanNode,
    tag: QueryTag,
    deadline: Option<Nanos>,
}

impl QueryBuilder {
    /// Start a plan reading from `stream`.
    pub fn on(stream: StreamId) -> Self {
        QueryBuilder {
            node: PlanNode::Leaf {
                stream,
                ops: Vec::new(),
            },
            tag: QueryTag::default(),
            deadline: None,
        }
    }

    /// Append an operator to the current (topmost) chain.
    pub fn op(mut self, spec: OperatorSpec) -> Self {
        match &mut self.node {
            PlanNode::Leaf { ops, .. } | PlanNode::Join { ops, .. } => ops.push(spec),
        }
        self
    }

    /// Append a select operator.
    pub fn select(self, cost: Nanos, selectivity: f64) -> Self {
        self.op(OperatorSpec::new(OpKind::Select, cost, selectivity))
    }

    /// Append a project operator.
    pub fn project(self, cost: Nanos) -> Self {
        self.op(OperatorSpec::new(OpKind::Project, cost, 1.0))
    }

    /// Append a stored-relation join operator.
    pub fn stored_join(self, cost: Nanos, selectivity: f64) -> Self {
        self.op(OperatorSpec::new(OpKind::StoredJoin, cost, selectivity))
    }

    /// Append a generic map/filter operator.
    pub fn map(self, cost: Nanos, selectivity: f64) -> Self {
        self.op(OperatorSpec::new(OpKind::Map, cost, selectivity))
    }

    /// Combine this plan (left input) with `right` under a time-based
    /// sliding-window join; subsequent operators apply to composite tuples.
    pub fn window_join(
        self,
        right: QueryBuilder,
        cost: Nanos,
        selectivity: f64,
        window: Nanos,
    ) -> Self {
        QueryBuilder {
            node: PlanNode::Join {
                left: Box::new(self.node),
                right: Box::new(right.node),
                join: JoinSpec::new(cost, selectivity, window),
                ops: Vec::new(),
            },
            tag: self.tag,
            deadline: self.deadline,
        }
    }

    /// Attach a workload-classification tag (per-class metrics, Figure 11).
    pub fn tag(mut self, tag: QueryTag) -> Self {
        self.tag = tag;
        self
    }

    /// Attach a per-query response-time deadline: tuples whose queueing
    /// delay already exceeds `deadline` at dequeue are expired instead of
    /// processed (stale results are worthless to this query).
    pub fn with_deadline(mut self, deadline: Nanos) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Validate and produce the query plan.
    pub fn build(self) -> Result<QueryPlan> {
        let mut plan = QueryPlan::with_tag(self.node, self.tag)?;
        plan.deadline = self.deadline;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn builds_sjp_chain() {
        let q = QueryBuilder::on(StreamId::new(3))
            .select(ms(1), 0.4)
            .stored_join(ms(1), 0.4)
            .project(ms(1))
            .build()
            .unwrap();
        assert!(q.is_single_stream());
        assert_eq!(q.operator_count(), 3);
        assert_eq!(q.leaf_streams(), vec![StreamId::new(3)]);
    }

    #[test]
    fn builds_window_join() {
        let q = QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.5)
            .window_join(
                QueryBuilder::on(StreamId::new(1)).select(ms(1), 0.5),
                ms(2),
                0.2,
                Nanos::from_secs(5),
            )
            .project(ms(1))
            .build()
            .unwrap();
        assert_eq!(q.leaf_count(), 2);
        assert_eq!(q.operator_count(), 4);
    }

    #[test]
    fn empty_single_stream_rejected() {
        assert!(QueryBuilder::on(StreamId::new(0)).build().is_err());
    }

    #[test]
    fn tag_is_attached() {
        let tag = QueryTag {
            cost_class: 3,
            selectivity_bucket: 7,
        };
        let q = QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.75)
            .tag(tag)
            .build()
            .unwrap();
        assert_eq!(q.tag, tag);
    }

    #[test]
    fn deadline_is_attached_and_survives_joins() {
        let q = QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.5)
            .with_deadline(ms(20))
            .build()
            .unwrap();
        assert_eq!(q.deadline, Some(ms(20)));

        let q = QueryBuilder::on(StreamId::new(0))
            .with_deadline(ms(7))
            .window_join(
                QueryBuilder::on(StreamId::new(1)),
                ms(2),
                0.2,
                Nanos::from_secs(1),
            )
            .select(ms(1), 0.9)
            .build()
            .unwrap();
        assert_eq!(q.deadline, Some(ms(7)));

        let plain = QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.5)
            .build()
            .unwrap();
        assert_eq!(plain.deadline, None);
    }

    #[test]
    fn ops_after_join_apply_to_common_segment() {
        let q = QueryBuilder::on(StreamId::new(0))
            .window_join(
                QueryBuilder::on(StreamId::new(1)),
                ms(2),
                0.2,
                Nanos::from_secs(1),
            )
            .select(ms(1), 0.9)
            .build()
            .unwrap();
        match &q.root {
            PlanNode::Join { ops, .. } => assert_eq!(ops.len(), 1),
            _ => panic!("expected join root"),
        }
    }
}
