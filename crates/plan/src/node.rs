//! Plan trees.
//!
//! A [`PlanNode`] is either a *leaf chain* (a stream feeding a sequence of
//! unary operators) or a *window join* of two subtrees followed by another
//! chain of unary operators. Single-stream queries are a bare leaf; the
//! paper's evaluated multi-stream shape (Figure 3) is one join of two leaves;
//! arbitrary nesting is supported because §5 notes the parameters "are
//! defined recursively" for multiple joins.

use hcq_common::{HcqError, Result, StreamId};

use crate::operator::{JoinSpec, OperatorSpec};

/// Index of a leaf within a query plan, in left-to-right order.
///
/// Leaves are the schedulable entry points of a query: the paper's virtual
/// segments `E_LL` / `E_RR` (§5.2) are exactly the leaf-to-root paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeafIndex(pub usize);

impl LeafIndex {
    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A node of a continuous-query plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// A chain of unary operators fed directly by a stream. The chain may be
    /// empty only under a parent join (the stream then feeds the join
    /// directly); a bare-leaf *query* must have at least one operator.
    Leaf {
        /// The input stream.
        stream: StreamId,
        /// Operators applied in order, index 0 closest to the stream.
        ops: Vec<OperatorSpec>,
    },
    /// A time-based sliding-window join of two subtrees, followed by a chain
    /// of unary operators (`E_C` in Figure 3; possibly empty at the root).
    Join {
        /// Left input subtree (`E_L`).
        left: Box<PlanNode>,
        /// Right input subtree (`E_R`).
        right: Box<PlanNode>,
        /// The join operator `O_J`.
        join: JoinSpec,
        /// Common segment `E_C` applied to composite tuples, in order.
        ops: Vec<OperatorSpec>,
    },
}

impl PlanNode {
    /// Number of leaves under this node.
    pub fn leaf_count(&self) -> usize {
        match self {
            PlanNode::Leaf { .. } => 1,
            PlanNode::Join { left, right, .. } => left.leaf_count() + right.leaf_count(),
        }
    }

    /// Number of join operators under this node.
    pub fn join_count(&self) -> usize {
        match self {
            PlanNode::Leaf { .. } => 0,
            PlanNode::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }

    /// Total number of operators (unary + join) under this node.
    pub fn operator_count(&self) -> usize {
        match self {
            PlanNode::Leaf { ops, .. } => ops.len(),
            PlanNode::Join {
                left, right, ops, ..
            } => 1 + ops.len() + left.operator_count() + right.operator_count(),
        }
    }

    /// The streams feeding the leaves, in left-to-right leaf order.
    pub fn leaf_streams(&self) -> Vec<StreamId> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.collect_leaf_streams(&mut out);
        out
    }

    fn collect_leaf_streams(&self, out: &mut Vec<StreamId>) {
        match self {
            PlanNode::Leaf { stream, .. } => out.push(*stream),
            PlanNode::Join { left, right, .. } => {
                left.collect_leaf_streams(out);
                right.collect_leaf_streams(out);
            }
        }
    }

    /// Validate the subtree: every operator spec must validate, and the tree
    /// must contain at least one operator overall (checked by the caller for
    /// the root).
    pub fn validate(&self) -> Result<()> {
        match self {
            PlanNode::Leaf { ops, .. } => {
                for op in ops {
                    op.validate()?;
                }
                Ok(())
            }
            PlanNode::Join {
                left,
                right,
                join,
                ops,
            } => {
                left.validate()?;
                right.validate()?;
                join.validate()?;
                for op in ops {
                    op.validate()?;
                }
                Ok(())
            }
        }
    }

    /// Validate this node as the *root* of a query: in addition to
    /// [`PlanNode::validate`], a bare leaf must have at least one operator
    /// (a query with no operators does no work and has `T_k = 0`, which the
    /// slowdown metric cannot accommodate).
    pub fn validate_as_root(&self) -> Result<()> {
        if let PlanNode::Leaf { ops, .. } = self {
            if ops.is_empty() {
                return Err(HcqError::plan(
                    "single-stream query must contain at least one operator",
                ));
            }
        }
        self.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcq_common::Nanos;

    fn leaf(stream: usize, n_ops: usize) -> PlanNode {
        PlanNode::Leaf {
            stream: StreamId::new(stream),
            ops: (0..n_ops)
                .map(|_| OperatorSpec::select(Nanos::from_millis(1), 0.5))
                .collect(),
        }
    }

    fn join(l: PlanNode, r: PlanNode, n_common: usize) -> PlanNode {
        PlanNode::Join {
            left: Box::new(l),
            right: Box::new(r),
            join: JoinSpec::new(Nanos::from_millis(2), 0.5, Nanos::from_secs(1)),
            ops: (0..n_common)
                .map(|_| OperatorSpec::project(Nanos::from_millis(1)))
                .collect(),
        }
    }

    #[test]
    fn counts_on_single_stream() {
        let n = leaf(0, 3);
        assert_eq!(n.leaf_count(), 1);
        assert_eq!(n.join_count(), 0);
        assert_eq!(n.operator_count(), 3);
        assert_eq!(n.leaf_streams(), vec![StreamId::new(0)]);
    }

    #[test]
    fn counts_on_two_stream_join() {
        let n = join(leaf(0, 1), leaf(1, 2), 1);
        assert_eq!(n.leaf_count(), 2);
        assert_eq!(n.join_count(), 1);
        assert_eq!(n.operator_count(), 1 + 2 + 1 + 1);
        assert_eq!(n.leaf_streams(), vec![StreamId::new(0), StreamId::new(1)]);
    }

    #[test]
    fn counts_on_nested_join() {
        let n = join(join(leaf(0, 1), leaf(1, 1), 0), leaf(2, 1), 2);
        assert_eq!(n.leaf_count(), 3);
        assert_eq!(n.join_count(), 2);
        assert_eq!(
            n.leaf_streams(),
            vec![StreamId::new(0), StreamId::new(1), StreamId::new(2)]
        );
    }

    #[test]
    fn root_validation_rejects_empty_leaf() {
        let empty = PlanNode::Leaf {
            stream: StreamId::new(0),
            ops: vec![],
        };
        assert!(empty.validate().is_ok());
        assert!(empty.validate_as_root().is_err());
        assert!(leaf(0, 1).validate_as_root().is_ok());
    }

    #[test]
    fn join_with_empty_sides_is_valid() {
        // A join may be fed by raw streams on both sides.
        let n = join(leaf(0, 0), leaf(1, 0), 0);
        assert!(n.validate_as_root().is_ok());
    }

    #[test]
    fn validation_propagates_bad_specs() {
        let bad = PlanNode::Leaf {
            stream: StreamId::new(0),
            ops: vec![OperatorSpec::select(Nanos::ZERO, 0.5)],
        };
        assert!(bad.validate().is_err());
        let bad_join = join(bad, leaf(1, 1), 0);
        assert!(bad_join.validate().is_err());
    }
}
