//! Graphviz DOT export for query plans — a debugging aid mirroring the
//! paper's Figure 1/3 plan diagrams.

use std::fmt::Write as _;

use crate::compiled::{CompiledOpKind, CompiledQuery, Port};
use crate::global::GlobalPlan;
use crate::query::QueryPlan;

/// Render a query plan as a Graphviz `digraph`.
///
/// Streams are boxes, unary operators are ellipses, joins are diamonds;
/// every edge is labelled with the port it enters.
pub fn to_dot(plan: &QueryPlan, name: &str) -> String {
    let cq = CompiledQuery::compile(plan);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=BT;");
    for (i, op) in cq.ops.iter().enumerate() {
        match &op.kind {
            CompiledOpKind::Unary(u) => {
                let _ = writeln!(
                    out,
                    "  op{i} [shape=ellipse,label=\"{}\\nc={} s={:.2}\"];",
                    u.kind.name(),
                    u.cost,
                    u.selectivity
                );
            }
            CompiledOpKind::Join(j) => {
                let _ = writeln!(
                    out,
                    "  op{i} [shape=diamond,label=\"⋈ V={}\\nc={} s={:.2}\"];",
                    j.window, j.cost, j.selectivity
                );
            }
        }
    }
    for (li, leaf) in cq.leaves.iter().enumerate() {
        let _ = writeln!(out, "  stream{li} [shape=box,label=\"{}\"];", leaf.stream);
        let (idx, port) = leaf.entry;
        let _ = writeln!(
            out,
            "  stream{li} -> op{idx} [label=\"{}\"];",
            port_label(port)
        );
    }
    for (i, op) in cq.ops.iter().enumerate() {
        if let Some((d, port)) = op.downstream {
            let _ = writeln!(out, "  op{i} -> op{d} [label=\"{}\"];", port_label(port));
        } else {
            let _ = writeln!(out, "  out [shape=plaintext,label=\"output\"];");
            let _ = writeln!(out, "  op{i} -> out;");
        }
    }
    out.push_str("}\n");
    out
}

/// Render a whole registered workload: one subgraph per query, with §7
/// sharing groups drawn as dashed boxes around their shared select.
pub fn global_to_dot(plan: &GlobalPlan, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=BT; compound=true;");
    let mut in_group = vec![None; plan.queries.len()];
    for (gi, g) in plan.sharing.iter().enumerate() {
        for &m in &g.members {
            in_group[m.index()] = Some(gi);
        }
    }
    for (qi, q) in plan.queries.iter().enumerate() {
        let cq = CompiledQuery::compile(q);
        let _ = writeln!(out, "  subgraph cluster_q{qi} {{");
        let _ = writeln!(out, "    label=\"Q{qi}\";");
        if in_group[qi].is_some() {
            let _ = writeln!(out, "    style=dashed;");
        }
        for (i, op) in cq.ops.iter().enumerate() {
            let label = match &op.kind {
                CompiledOpKind::Unary(u) => {
                    format!("{}\\nc={} s={:.2}", u.kind.name(), u.cost, u.selectivity)
                }
                CompiledOpKind::Join(j) => {
                    format!("join V={}\\nc={} s={:.2}", j.window, j.cost, j.selectivity)
                }
            };
            let shape = if op.is_join() { "diamond" } else { "ellipse" };
            let _ = writeln!(out, "    q{qi}op{i} [shape={shape},label=\"{label}\"];");
        }
        for (i, op) in cq.ops.iter().enumerate() {
            if let Some((d, port)) = op.downstream {
                let _ = writeln!(
                    out,
                    "    q{qi}op{i} -> q{qi}op{d} [label=\"{}\"];",
                    port_label(port)
                );
            }
        }
        let _ = writeln!(out, "  }}");
        for leaf in &cq.leaves {
            let _ = writeln!(
                out,
                "  stream{} -> q{qi}op{} [label=\"{}\"];",
                leaf.stream.index(),
                leaf.entry.0,
                port_label(leaf.entry.1)
            );
        }
    }
    for s in plan.streams() {
        let _ = writeln!(out, "  stream{} [shape=box,label=\"{s}\"];", s.index());
    }
    out.push_str("}\n");
    out
}

fn port_label(port: Port) -> &'static str {
    match port {
        Port::Single => "",
        Port::Left => "L",
        Port::Right => "R",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use hcq_common::{Nanos, StreamId};

    #[test]
    fn dot_for_single_stream() {
        let q = QueryBuilder::on(StreamId::new(0))
            .select(Nanos::from_millis(1), 0.5)
            .project(Nanos::from_millis(1))
            .build()
            .unwrap();
        let dot = to_dot(&q, "q0");
        assert!(dot.starts_with("digraph \"q0\""));
        assert!(dot.contains("select"));
        assert!(dot.contains("project"));
        assert!(dot.contains("stream0 -> op0"));
        assert!(dot.contains("-> out"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_for_join_labels_ports() {
        let q = QueryBuilder::on(StreamId::new(0))
            .window_join(
                QueryBuilder::on(StreamId::new(1)),
                Nanos::from_millis(2),
                0.5,
                Nanos::from_secs(1),
            )
            .build()
            .unwrap();
        let dot = to_dot(&q, "j");
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("[label=\"L\"]"));
        assert!(dot.contains("[label=\"R\"]"));
    }
}

#[cfg(test)]
mod global_tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use hcq_common::{Nanos, StreamId};

    #[test]
    fn global_dot_renders_queries_and_sharing() {
        let mut gp = GlobalPlan::default();
        let a = gp.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(Nanos::from_millis(1), 0.5)
                .project(Nanos::from_millis(1))
                .build()
                .unwrap(),
        );
        let b = gp.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(Nanos::from_millis(1), 0.5)
                .build()
                .unwrap(),
        );
        gp.share_first_op(vec![a, b]).unwrap();
        let dot = global_to_dot(&gp, "workload");
        assert!(dot.contains("subgraph cluster_q0"));
        assert!(dot.contains("subgraph cluster_q1"));
        assert!(dot.contains("style=dashed"), "sharing group marked");
        assert!(dot.contains("stream0 -> q0op0"));
        assert!(dot.contains("shape=box"));
    }
}
