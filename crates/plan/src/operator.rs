//! Operator specifications.
//!
//! §2 of the paper characterizes every operator by exactly two parameters:
//! its processing cost `c_x` (time to process one input tuple) and its
//! selectivity `s_x` (expected tuples produced per input tuple). Scheduling
//! never looks inside an operator beyond these two numbers, so an operator
//! *specification* is all the simulator needs; the actual predicate is
//! realized with deterministic coins at execution time.

use hcq_common::{HcqError, Nanos, Result};

/// The kind of a unary (single-input) operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A filter; selectivity in `(0, 1]`. Realized against the tuple's
    /// uniform `key` attribute (as in §8: predicates over an attribute drawn
    /// uniform in \[1,100\]), so select outcomes are correlated across
    /// queries exactly as in the paper's testbed.
    Select,
    /// A projection; passes every tuple (`s = 1`), costs `c` per tuple.
    Project,
    /// A join with a stored relation (§8 uses this for single-stream
    /// queries). Selectivity may be ≤ 1 (semi-join-like filtering) and is
    /// realized with an independent per-(tuple, operator) coin.
    StoredJoin,
    /// A generic transformation with selectivity ≤ 1; behaves like
    /// [`OpKind::StoredJoin`] for realization purposes. Useful for building
    /// synthetic plans in tests and examples.
    Map,
}

impl OpKind {
    /// Human-readable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Select => "select",
            OpKind::Project => "project",
            OpKind::StoredJoin => "stored_join",
            OpKind::Map => "map",
        }
    }

    /// Whether the operator's pass/fail outcome is driven by the tuple's
    /// shared `key` attribute (correlated across queries) rather than an
    /// independent coin.
    pub fn is_key_predicate(self) -> bool {
        matches!(self, OpKind::Select)
    }
}

/// Specification of a unary operator: kind, cost, selectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorSpec {
    /// What the operator does (affects only how selectivity is realized).
    pub kind: OpKind,
    /// Processing cost `c_x`: virtual time consumed per input tuple.
    pub cost: Nanos,
    /// Selectivity `s_x`: expected output tuples per input tuple; in `(0, 1]`
    /// for unary operators (window joins, which may exceed 1, are
    /// [`JoinSpec`]s).
    pub selectivity: f64,
}

impl OperatorSpec {
    /// Construct an operator spec.
    pub fn new(kind: OpKind, cost: Nanos, selectivity: f64) -> Self {
        OperatorSpec {
            kind,
            cost,
            selectivity,
        }
    }

    /// A select operator.
    pub fn select(cost: Nanos, selectivity: f64) -> Self {
        Self::new(OpKind::Select, cost, selectivity)
    }

    /// A project operator (selectivity 1).
    pub fn project(cost: Nanos) -> Self {
        Self::new(OpKind::Project, cost, 1.0)
    }

    /// A stored-relation join operator.
    pub fn stored_join(cost: Nanos, selectivity: f64) -> Self {
        Self::new(OpKind::StoredJoin, cost, selectivity)
    }

    /// A generic map/filter operator.
    pub fn map(cost: Nanos, selectivity: f64) -> Self {
        Self::new(OpKind::Map, cost, selectivity)
    }

    /// Validate the spec: cost must be positive, selectivity in `(0, 1]`.
    ///
    /// Zero-cost operators are rejected because the paper's priority
    /// functions divide by (products of) costs, and a free operator would
    /// also let the simulator loop without advancing time.
    pub fn validate(&self) -> Result<()> {
        if self.cost.is_zero() {
            return Err(HcqError::plan(format!(
                "{} operator has zero cost",
                self.kind.name()
            )));
        }
        if !self.selectivity.is_finite() || self.selectivity <= 0.0 || self.selectivity > 1.0 {
            return Err(HcqError::plan(format!(
                "{} operator selectivity {} outside (0, 1]",
                self.kind.name(),
                self.selectivity
            )));
        }
        Ok(())
    }
}

/// Specification of a time-based sliding-window join operator (§5).
///
/// The join is executed as a symmetric hash join: an arriving tuple is
/// inserted into its side's hash table, then probes the other side's table
/// for tuples within the window `V`; each matching pair that passes the join
/// predicate (probability `selectivity`) yields a composite tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinSpec {
    /// Cost `c_J` of the hash + insert + probe work for one input tuple.
    pub cost: Nanos,
    /// Join-predicate selectivity per candidate pair, in `(0, 1]`.
    pub selectivity: f64,
    /// Window interval `V`: a pair matches only if their timestamps differ
    /// by at most `V`.
    pub window: Nanos,
}

impl JoinSpec {
    /// Construct a window-join spec.
    pub fn new(cost: Nanos, selectivity: f64, window: Nanos) -> Self {
        JoinSpec {
            cost,
            selectivity,
            window,
        }
    }

    /// Validate: positive cost and window, selectivity in `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.cost.is_zero() {
            return Err(HcqError::plan("window join has zero cost"));
        }
        if self.window.is_zero() {
            return Err(HcqError::plan("window join has zero window"));
        }
        if !self.selectivity.is_finite() || self.selectivity <= 0.0 || self.selectivity > 1.0 {
            return Err(HcqError::plan(format!(
                "window join selectivity {} outside (0, 1]",
                self.selectivity
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kinds() {
        let s = OperatorSpec::select(Nanos::from_millis(1), 0.5);
        assert_eq!(s.kind, OpKind::Select);
        assert!(s.kind.is_key_predicate());
        let p = OperatorSpec::project(Nanos::from_millis(1));
        assert_eq!(p.kind, OpKind::Project);
        assert_eq!(p.selectivity, 1.0);
        let j = OperatorSpec::stored_join(Nanos::from_millis(2), 0.3);
        assert_eq!(j.kind, OpKind::StoredJoin);
        assert!(!j.kind.is_key_predicate());
        let m = OperatorSpec::map(Nanos::from_millis(2), 0.3);
        assert_eq!(m.kind, OpKind::Map);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(OperatorSpec::select(Nanos::ZERO, 0.5).validate().is_err());
        assert!(OperatorSpec::select(Nanos(1), 0.0).validate().is_err());
        assert!(OperatorSpec::select(Nanos(1), 1.5).validate().is_err());
        assert!(OperatorSpec::select(Nanos(1), f64::NAN).validate().is_err());
        assert!(OperatorSpec::select(Nanos(1), 1.0).validate().is_ok());
        assert!(OperatorSpec::select(Nanos(1), 0.001).validate().is_ok());
    }

    #[test]
    fn join_validation() {
        let ok = JoinSpec::new(Nanos(10), 0.5, Nanos::from_secs(1));
        assert!(ok.validate().is_ok());
        assert!(JoinSpec::new(Nanos::ZERO, 0.5, Nanos(1))
            .validate()
            .is_err());
        assert!(JoinSpec::new(Nanos(1), 0.5, Nanos::ZERO)
            .validate()
            .is_err());
        assert!(JoinSpec::new(Nanos(1), 0.0, Nanos(1)).validate().is_err());
        assert!(JoinSpec::new(Nanos(1), 2.0, Nanos(1)).validate().is_err());
    }

    #[test]
    fn kind_names() {
        assert_eq!(OpKind::Select.name(), "select");
        assert_eq!(OpKind::Project.name(), "project");
        assert_eq!(OpKind::StoredJoin.name(), "stored_join");
        assert_eq!(OpKind::Map.name(), "map");
    }
}
