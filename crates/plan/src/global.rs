//! Multi-query workloads with shared operators.
//!
//! A DSMS hosts many registered queries; multi-query optimization merges
//! common sub-expressions so a shared operator executes once per tuple (§2,
//! §7). [`GlobalPlan`] is the registration unit the engine and the workload
//! generator exchange: the query list plus the sharing structure. Following
//! the paper's evaluation (§9.3), sharing is expressed as groups of
//! single-stream queries whose *first* (select) operator is physically
//! shared.

use hcq_common::{HcqError, QueryId, Result, StreamId};

use crate::node::PlanNode;
use crate::operator::OperatorSpec;
use crate::query::QueryPlan;

/// A select operator shared by the leading position of several queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedSelect {
    /// The stream feeding the shared operator.
    pub stream: StreamId,
    /// The shared operator's spec; must equal each member's first operator.
    pub op: OperatorSpec,
    /// The queries sharing it (each single-stream, on `stream`, starting
    /// with `op`).
    pub members: Vec<QueryId>,
}

/// A registered multi-query workload.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlan {
    /// All registered queries; `QueryId` indexes this vector.
    pub queries: Vec<QueryPlan>,
    /// Sharing groups; empty when no multi-query optimization applies.
    pub sharing: Vec<SharedSelect>,
}

impl GlobalPlan {
    /// A workload with no shared operators.
    pub fn unshared(queries: Vec<QueryPlan>) -> Self {
        GlobalPlan {
            queries,
            sharing: Vec::new(),
        }
    }

    /// Register a query, returning its id.
    pub fn add_query(&mut self, q: QueryPlan) -> QueryId {
        let id = QueryId::new(self.queries.len());
        self.queries.push(q);
        id
    }

    /// Declare that `members` share their first operator. Validates the
    /// sharing invariant immediately.
    pub fn share_first_op(&mut self, members: Vec<QueryId>) -> Result<()> {
        let (stream, op) = self.first_op_of(
            *members
                .first()
                .ok_or_else(|| HcqError::plan("a sharing group needs at least one member"))?,
        )?;
        for &m in &members[1..] {
            let (s2, op2) = self.first_op_of(m)?;
            if s2 != stream || op2 != op {
                return Err(HcqError::plan(format!(
                    "query {m} cannot share: first operator or stream differs"
                )));
            }
        }
        self.sharing.push(SharedSelect {
            stream,
            op,
            members,
        });
        Ok(())
    }

    fn first_op_of(&self, id: QueryId) -> Result<(StreamId, OperatorSpec)> {
        let q = self
            .queries
            .get(id.index())
            .ok_or_else(|| HcqError::plan(format!("unknown query {id}")))?;
        match &q.root {
            PlanNode::Leaf { stream, ops } if !ops.is_empty() => Ok((*stream, ops[0])),
            _ => Err(HcqError::plan(format!(
                "query {id} is not a single-stream chain; only leading select \
                 operators of single-stream queries can be shared"
            ))),
        }
    }

    /// Validate the whole registration: every query individually, plus every
    /// sharing group's invariant and disjointness (a query belongs to at
    /// most one group).
    pub fn validate(&self) -> Result<()> {
        for (i, q) in self.queries.iter().enumerate() {
            q.root
                .validate_as_root()
                .map_err(|e| HcqError::plan(format!("query Q{i}: {e}")))?;
        }
        let mut seen = vec![false; self.queries.len()];
        for group in &self.sharing {
            if group.members.is_empty() {
                return Err(HcqError::plan("empty sharing group"));
            }
            for &m in &group.members {
                let (s, op) = self.first_op_of(m)?;
                if s != group.stream || op != group.op {
                    return Err(HcqError::plan(format!(
                        "sharing group invariant violated for query {m}"
                    )));
                }
                if std::mem::replace(&mut seen[m.index()], true) {
                    return Err(HcqError::plan(format!(
                        "query {m} appears in more than one sharing group"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The distinct streams referenced by any query, ascending.
    pub fn streams(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self.queries.iter().flat_map(|q| q.leaf_streams()).collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcq_common::Nanos;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    fn query_on(stream: usize, first_cost: u64) -> QueryPlan {
        QueryPlan::new(PlanNode::Leaf {
            stream: StreamId::new(stream),
            ops: vec![
                OperatorSpec::select(ms(first_cost), 0.5),
                OperatorSpec::project(ms(1)),
            ],
        })
        .unwrap()
    }

    #[test]
    fn sharing_groups_validate() {
        let mut gp = GlobalPlan::default();
        let a = gp.add_query(query_on(0, 2));
        let b = gp.add_query(query_on(0, 2));
        gp.share_first_op(vec![a, b]).unwrap();
        gp.validate().unwrap();
        assert_eq!(gp.sharing[0].members, vec![a, b]);
        assert_eq!(gp.sharing[0].stream, StreamId::new(0));
    }

    #[test]
    fn sharing_rejects_mismatched_first_ops() {
        let mut gp = GlobalPlan::default();
        let a = gp.add_query(query_on(0, 2));
        let b = gp.add_query(query_on(0, 3)); // different cost -> different op
        assert!(gp.share_first_op(vec![a, b]).is_err());
        let c = gp.add_query(query_on(1, 2)); // different stream
        assert!(gp.share_first_op(vec![a, c]).is_err());
    }

    #[test]
    fn sharing_rejects_double_membership() {
        let mut gp = GlobalPlan::default();
        let a = gp.add_query(query_on(0, 2));
        let b = gp.add_query(query_on(0, 2));
        gp.share_first_op(vec![a, b]).unwrap();
        gp.share_first_op(vec![a]).unwrap(); // accepted at insert time...
        assert!(gp.validate().is_err()); // ...caught by whole-plan validation
    }

    #[test]
    fn streams_deduped() {
        let mut gp = GlobalPlan::default();
        gp.add_query(query_on(1, 2));
        gp.add_query(query_on(0, 2));
        gp.add_query(query_on(1, 3));
        assert_eq!(gp.streams(), vec![StreamId::new(0), StreamId::new(1)]);
        assert_eq!(gp.len(), 3);
        assert!(!gp.is_empty());
    }

    #[test]
    fn empty_group_rejected() {
        let mut gp = GlobalPlan::default();
        assert!(gp.share_first_op(vec![]).is_err());
    }
}
