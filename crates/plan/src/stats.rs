//! Derived plan statistics — the inputs to every scheduling priority.
//!
//! For a segment `E_x` starting at operator `O_x` and running to the root,
//! §2 defines:
//!
//! * **global selectivity** `S_x = s_x · s_y · … · s_r` — expected tuples
//!   emitted at the root per tuple entering at `O_x`;
//! * **global average cost** `C̄_x = c_x + s_x·c_y + s_x·s_y·c_z + …` —
//!   expected processing time to push one tuple from `O_x` to the root;
//! * **ideal processing time** `T_k = Σ c_i` — the cost a *produced* tuple
//!   ideally incurs (every filter satisfied).
//!
//! §5 extends these across window joins: a tuple entering join `O_J` from
//! one side meets an expected `S_other · V/τ_other` candidates in the other
//! side's hash table (window `V`, other-side post-segment inter-arrival
//! `τ_other/S_other`), each surviving the predicate with probability `s_J`,
//! so the join contributes a *multiplicity* `s_J · S_other · V/τ_other` to
//! `S_x` and `c_J + multiplicity-scaled downstream cost` to `C̄_x`. With
//! nested joins the other-side arrival rate is itself derived recursively —
//! here by a forward rate-propagation pass over the compiled plan.

use hcq_common::{HcqError, Nanos, Result, StreamId};

use crate::compiled::{CompiledOpKind, CompiledQuery, Port};
use crate::node::LeafIndex;

/// Mean inter-arrival times (`τ`) per stream, needed to evaluate the §5
/// window-occupancy estimates. Single-stream plans need no rates.
#[derive(Debug, Clone, Default)]
pub struct StreamRates {
    tau: Vec<Option<Nanos>>,
}

impl StreamRates {
    /// No rates known (sufficient for join-free workloads).
    pub fn none() -> Self {
        StreamRates::default()
    }

    /// Record stream `id`'s mean inter-arrival time.
    pub fn set(&mut self, id: StreamId, tau: Nanos) -> &mut Self {
        if self.tau.len() <= id.index() {
            self.tau.resize(id.index() + 1, None);
        }
        self.tau[id.index()] = Some(tau);
        self
    }

    /// Builder-style [`StreamRates::set`].
    pub fn with(mut self, id: StreamId, tau: Nanos) -> Self {
        self.set(id, tau);
        self
    }

    /// The stream's mean inter-arrival time, if known.
    pub fn tau(&self, id: StreamId) -> Option<Nanos> {
        self.tau.get(id.index()).copied().flatten()
    }

    /// The stream's mean arrival rate in tuples per nanosecond, if known.
    pub fn rate(&self, id: StreamId) -> Option<f64> {
        self.tau(id).map(|t| {
            debug_assert!(!t.is_zero());
            1.0 / t.as_nanos() as f64
        })
    }
}

/// Statistics of one operator segment (operator → root).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegStats {
    /// Global selectivity `S_x`: expected root emissions per entering tuple.
    pub selectivity: f64,
    /// Global average cost `C̄_x` in nanoseconds (kept in `f64`: expected
    /// values need not be whole nanoseconds).
    pub avg_cost_ns: f64,
}

impl SegStats {
    /// Global output rate `GR_x = S_x / C̄_x` (units: tuples per nanosecond
    /// of processing) — the HR priority of [the segment starting at] this
    /// operator.
    pub fn output_rate(&self) -> f64 {
        self.selectivity / self.avg_cost_ns
    }
}

/// Segment statistics of an operator, per entry port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpSegStats {
    /// Unary operator: one entry.
    Unary(SegStats),
    /// Window join: statistics differ depending on the side a tuple enters
    /// from (the *other* side's hash-table occupancy sets the multiplicity).
    Join {
        /// Stats for a tuple entering on the left port.
        left: SegStats,
        /// Stats for a tuple entering on the right port.
        right: SegStats,
    },
}

impl OpSegStats {
    /// The stats for a given entry port.
    pub fn at(&self, port: Port) -> SegStats {
        match (self, port) {
            (OpSegStats::Unary(s), Port::Single) => *s,
            (OpSegStats::Join { left, .. }, Port::Left) => *left,
            (OpSegStats::Join { right, .. }, Port::Right) => *right,
            _ => panic!("port/operator mismatch"),
        }
    }
}

/// Statistics of one leaf-to-root virtual segment (`E_LL`/`E_RR` in §5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafSegmentStats {
    /// Which leaf.
    pub leaf: LeafIndex,
    /// The feeding stream.
    pub stream: StreamId,
    /// Global selectivity `S` of the whole leaf-to-root segment.
    pub selectivity: f64,
    /// Global average cost `C̄` of the segment, in nanoseconds.
    pub avg_cost_ns: f64,
    /// The query's ideal total processing time `T_k`.
    pub ideal_time: Nanos,
    /// Ideal alone-in-the-system latency from this leaf (Definition 6
    /// decomposition; see [`CompiledQuery::alone_cost`]).
    pub alone_cost: Nanos,
}

impl LeafSegmentStats {
    /// Global output rate `S/C̄` — the HR priority (Equation 4).
    pub fn output_rate(&self) -> f64 {
        self.selectivity / self.avg_cost_ns
    }

    /// Normalized output rate `S/(C̄·T)` — the HNR priority (Equation 3),
    /// with `T` in nanoseconds.
    pub fn normalized_rate(&self) -> f64 {
        self.output_rate() / self.ideal_time.as_nanos() as f64
    }

    /// The static BSD factor `Φ = S/(C̄·T²)` (§6.2.1); the dynamic BSD
    /// priority is `Φ · W`.
    pub fn bsd_static(&self) -> f64 {
        let t = self.ideal_time.as_nanos() as f64;
        self.selectivity / (self.avg_cost_ns * t * t)
    }
}

/// All derived statistics of a compiled query.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Per-operator segment statistics, indexed like `CompiledQuery::ops`.
    pub per_op: Vec<OpSegStats>,
    /// Per-leaf segment statistics, indexed like `CompiledQuery::leaves`.
    pub per_leaf: Vec<LeafSegmentStats>,
    /// The query's ideal total processing time `T_k`.
    pub ideal_time: Nanos,
}

impl PlanStats {
    /// Compute the statistics of `cq`. `rates` must cover every stream that
    /// feeds a join (directly or through a chain); join-free plans accept
    /// [`StreamRates::none`].
    pub fn compute(cq: &CompiledQuery, rates: &StreamRates) -> Result<Self> {
        let n = cq.ops.len();

        // ---- forward pass: input rate (tuples/ns) arriving at each port ----
        // in_rate[i] = (single_or_left, right)
        let mut in_rate = vec![(0.0f64, 0.0f64); n];
        let needs_rates = cq.ops.iter().any(|op| op.is_join());
        for leaf in &cq.leaves {
            let rate = match rates.rate(leaf.stream) {
                Some(r) => r,
                None if !needs_rates => 0.0, // unused downstream
                None => {
                    return Err(HcqError::config(format!(
                        "plan contains window joins but no inter-arrival time is \
                         configured for stream {}",
                        leaf.stream
                    )))
                }
            };
            add_rate(&mut in_rate, leaf.entry, rate);
        }
        let mut out_rate = vec![0.0f64; n];
        for i in 0..n {
            let produced = match &cq.ops[i].kind {
                CompiledOpKind::Unary(u) => (in_rate[i].0) * u.selectivity,
                CompiledOpKind::Join(j) => {
                    let (l, r) = in_rate[i];
                    let v = j.window.as_nanos() as f64;
                    // Composite generation rate: each left arrival matches an
                    // expected s_J·(r·V) partners, and symmetrically.
                    2.0 * j.selectivity * v * l * r
                }
            };
            out_rate[i] = produced;
            if let Some(target) = cq.ops[i].downstream {
                add_rate(&mut in_rate, target, produced);
            }
        }

        // ---- backward pass: segment stats from each operator to the root ----
        let mut per_op: Vec<Option<OpSegStats>> = vec![None; n];
        for i in (0..n).rev() {
            let down = cq.ops[i].downstream.map(|(d, port)| {
                per_op[d]
                    .as_ref()
                    .expect("downstream already computed (reverse-topological order)")
                    .at(port)
            });
            let stats = match &cq.ops[i].kind {
                CompiledOpKind::Unary(u) => {
                    let (sel, cost) = extend(u.selectivity, u.cost, down);
                    OpSegStats::Unary(SegStats {
                        selectivity: sel,
                        avg_cost_ns: cost,
                    })
                }
                CompiledOpKind::Join(j) => {
                    let v = j.window.as_nanos() as f64;
                    let (l_in, r_in) = in_rate[i];
                    // Multiplicity seen by a tuple entering from each side:
                    // expected qualifying partners in the *other* hash table.
                    let mult_from_left = j.selectivity * r_in * v;
                    let mult_from_right = j.selectivity * l_in * v;
                    let (sel_l, cost_l) = extend(mult_from_left, j.cost, down);
                    let (sel_r, cost_r) = extend(mult_from_right, j.cost, down);
                    OpSegStats::Join {
                        left: SegStats {
                            selectivity: sel_l,
                            avg_cost_ns: cost_l,
                        },
                        right: SegStats {
                            selectivity: sel_r,
                            avg_cost_ns: cost_r,
                        },
                    }
                }
            };
            per_op[i] = Some(stats);
        }
        let per_op: Vec<OpSegStats> = per_op.into_iter().map(Option::unwrap).collect();

        // ---- leaf segments ----
        let ideal_time = cq.ideal_time();
        let per_leaf = cq
            .leaves
            .iter()
            .enumerate()
            .map(|(li, leaf)| {
                let entry = per_op[leaf.entry.0].at(leaf.entry.1);
                LeafSegmentStats {
                    leaf: LeafIndex(li),
                    stream: leaf.stream,
                    selectivity: entry.selectivity,
                    avg_cost_ns: entry.avg_cost_ns,
                    ideal_time,
                    alone_cost: cq.alone_cost(LeafIndex(li)),
                }
            })
            .collect();

        Ok(PlanStats {
            per_op,
            per_leaf,
            ideal_time,
        })
    }

    /// Segment stats of the operator at `idx` as entered through `port`.
    pub fn op(&self, idx: usize, port: Port) -> SegStats {
        self.per_op[idx].at(port)
    }
}

/// `(S, C̄)` of a segment whose first operator has per-tuple multiplicity
/// `mult` (its selectivity, or a join's expected match count) and cost
/// `cost`, followed by an optional downstream segment.
fn extend(mult: f64, cost: Nanos, down: Option<SegStats>) -> (f64, f64) {
    let c = cost.as_nanos() as f64;
    match down {
        Some(d) => (mult * d.selectivity, c + mult * d.avg_cost_ns),
        None => (mult, c),
    }
}

fn add_rate(in_rate: &mut [(f64, f64)], target: (usize, Port), rate: f64) {
    let (idx, port) = target;
    match port {
        Port::Single | Port::Left => in_rate[idx].0 += rate,
        Port::Right => in_rate[idx].1 += rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlanNode;
    use crate::operator::{JoinSpec, OperatorSpec};
    use crate::query::QueryPlan;
    use proptest::prelude::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    fn compile(root: PlanNode) -> CompiledQuery {
        CompiledQuery::compile(&QueryPlan::new(root).unwrap())
    }

    /// §2 worked example: chain of (c, s) pairs.
    fn chain(specs: &[(u64, f64)]) -> CompiledQuery {
        compile(PlanNode::Leaf {
            stream: StreamId::new(0),
            ops: specs
                .iter()
                .map(|&(c, s)| OperatorSpec::map(ms(c), s))
                .collect(),
        })
    }

    #[test]
    fn single_op_stats() {
        let cq = chain(&[(5, 1.0)]);
        let st = PlanStats::compute(&cq, &StreamRates::none()).unwrap();
        let leaf = &st.per_leaf[0];
        assert_eq!(leaf.selectivity, 1.0);
        assert_eq!(leaf.avg_cost_ns, ms(5).as_nanos() as f64);
        assert_eq!(leaf.ideal_time, ms(5));
        // Example 1 priorities: HR = 1/5ms; HNR = 1/(5ms·5ms).
        let t = ms(5).as_nanos() as f64;
        assert!((leaf.output_rate() - 1.0 / t).abs() < 1e-18);
        assert!((leaf.normalized_rate() - 1.0 / (t * t)).abs() < 1e-24);
    }

    #[test]
    fn example1_priority_ordering() {
        // Q1: c=5ms s=1.0; Q2: c=2ms s=0.33. HR prefers Q1, HNR prefers Q2.
        let q1 = chain(&[(5, 1.0)]);
        let q2 = chain(&[(2, 0.33)]);
        let s1 = PlanStats::compute(&q1, &StreamRates::none())
            .unwrap()
            .per_leaf[0];
        let s2 = PlanStats::compute(&q2, &StreamRates::none())
            .unwrap()
            .per_leaf[0];
        assert!(s1.output_rate() > s2.output_rate(), "HR picks Q1 first");
        assert!(
            s2.normalized_rate() > s1.normalized_rate(),
            "HNR picks Q2 first"
        );
    }

    #[test]
    fn chain_global_selectivity_and_cost() {
        // S_0 = 0.5·0.4 = 0.2; C̄_0 = 2 + 0.5·10 = 7ms; T = 12ms.
        let cq = chain(&[(2, 0.5), (10, 0.4)]);
        let st = PlanStats::compute(&cq, &StreamRates::none()).unwrap();
        let leaf = &st.per_leaf[0];
        assert!((leaf.selectivity - 0.2).abs() < 1e-12);
        assert!((leaf.avg_cost_ns - ms(7).as_nanos() as f64).abs() < 1e-6);
        assert_eq!(leaf.ideal_time, ms(12));
        // Mid-segment stats: starting at op 1: S = 0.4, C̄ = 10ms.
        let mid = st.op(1, Port::Single);
        assert!((mid.selectivity - 0.4).abs() < 1e-12);
        assert!((mid.avg_cost_ns - ms(10).as_nanos() as f64).abs() < 1e-6);
    }

    fn join_query(window_secs: u64) -> CompiledQuery {
        compile(PlanNode::Join {
            left: Box::new(PlanNode::Leaf {
                stream: StreamId::new(0),
                ops: vec![OperatorSpec::select(ms(1), 0.5)],
            }),
            right: Box::new(PlanNode::Leaf {
                stream: StreamId::new(1),
                ops: vec![OperatorSpec::select(ms(2), 0.25)],
            }),
            join: JoinSpec::new(ms(3), 0.1, Nanos::from_secs(window_secs)),
            ops: vec![OperatorSpec::project(ms(4))],
        })
    }

    #[test]
    fn join_stats_match_section5_formulas() {
        // τ_l = 100ms, τ_r = 50ms, V = 1s.
        let cq = join_query(1);
        let rates = StreamRates::none()
            .with(StreamId::new(0), ms(100))
            .with(StreamId::new(1), ms(50));
        let st = PlanStats::compute(&cq, &rates).unwrap();

        // E_LL: S_x = S_L · [s_J · S_R · V/τ_R] · S_C
        //   S_L = 0.5, S_R = 0.25, V/τ_R = 20, s_J = 0.1, S_C = 1.
        let expect_mult_left = 0.1 * 0.25 * 20.0;
        let left = &st.per_leaf[0];
        assert!((left.selectivity - 0.5 * expect_mult_left).abs() < 1e-9);
        // C̄_LL = c_L + S_L·c_J + S_L·mult·c_C = 1 + 0.5·3 + 0.5·0.5·4 = 3.5ms
        let expect_cost = 1.0 + 0.5 * 3.0 + 0.5 * expect_mult_left * 4.0;
        assert!((left.avg_cost_ns - expect_cost * 1e6).abs() < 1e-3);

        // E_RR symmetric: V/τ_L = 10, S_L = 0.5 → mult = 0.1·0.5·10 = 0.5.
        let right = &st.per_leaf[1];
        assert!((right.selectivity - 0.25 * 0.5).abs() < 1e-9);

        // T_k = C_L + C_R + 2C_J + C_C = 1 + 2 + 6 + 4 = 13ms (Definition 6);
        // each leaf's alone path pays the join once.
        assert_eq!(st.ideal_time, ms(13));
        assert_eq!(left.alone_cost, ms(1 + 3 + 4));
        assert_eq!(right.alone_cost, ms(2 + 3 + 4));
    }

    #[test]
    fn join_selectivity_scales_with_window() {
        let rates = StreamRates::none()
            .with(StreamId::new(0), ms(100))
            .with(StreamId::new(1), ms(50));
        let s1 = PlanStats::compute(&join_query(1), &rates).unwrap().per_leaf[0].selectivity;
        let s10 = PlanStats::compute(&join_query(10), &rates)
            .unwrap()
            .per_leaf[0]
            .selectivity;
        assert!((s10 / s1 - 10.0).abs() < 1e-9, "S grows linearly with V");
    }

    #[test]
    fn join_without_rates_errors() {
        let cq = join_query(1);
        let err = PlanStats::compute(&cq, &StreamRates::none()).unwrap_err();
        assert!(err.to_string().contains("inter-arrival"));
    }

    #[test]
    fn single_stream_needs_no_rates() {
        let cq = chain(&[(1, 0.5)]);
        assert!(PlanStats::compute(&cq, &StreamRates::none()).is_ok());
    }

    #[test]
    fn join_selectivity_can_exceed_one() {
        // Dense window: each arrival meets many partners (selectivity > 1,
        // as §9.1.7 notes for join queries).
        let cq = compile(PlanNode::Join {
            left: Box::new(PlanNode::Leaf {
                stream: StreamId::new(0),
                ops: vec![],
            }),
            right: Box::new(PlanNode::Leaf {
                stream: StreamId::new(1),
                ops: vec![],
            }),
            join: JoinSpec::new(ms(1), 1.0, Nanos::from_secs(10)),
            ops: vec![],
        });
        let rates = StreamRates::none()
            .with(StreamId::new(0), ms(100))
            .with(StreamId::new(1), ms(100));
        let st = PlanStats::compute(&cq, &rates).unwrap();
        // V/τ = 100 partners expected.
        assert!(st.per_leaf[0].selectivity > 1.0);
        assert!((st.per_leaf[0].selectivity - 100.0).abs() < 1e-6);
    }

    #[test]
    fn bsd_static_is_normalized_rate_over_t() {
        let cq = chain(&[(2, 0.33)]);
        let st = PlanStats::compute(&cq, &StreamRates::none()).unwrap();
        let leaf = &st.per_leaf[0];
        let t = leaf.ideal_time.as_nanos() as f64;
        assert!((leaf.bsd_static() - leaf.normalized_rate() / t).abs() < 1e-30);
    }

    proptest! {
        /// For pure filter chains, C̄ ≤ T always (expected cost cannot exceed
        /// the everything-passes cost), with equality iff all s = 1.
        #[test]
        fn avg_cost_bounded_by_ideal_time(
            specs in proptest::collection::vec((1u64..20, 0.05f64..1.0), 1..6)
        ) {
            let cq = chain(&specs);
            let st = PlanStats::compute(&cq, &StreamRates::none()).unwrap();
            let leaf = &st.per_leaf[0];
            prop_assert!(leaf.avg_cost_ns <= leaf.ideal_time.as_nanos() as f64 + 1e-6);
            prop_assert!(leaf.selectivity > 0.0 && leaf.selectivity <= 1.0);
        }

        /// Segment selectivity from op k equals the product of the remaining
        /// operator selectivities.
        #[test]
        fn segment_selectivity_is_suffix_product(
            specs in proptest::collection::vec((1u64..20, 0.05f64..1.0), 1..6)
        ) {
            let cq = chain(&specs);
            let st = PlanStats::compute(&cq, &StreamRates::none()).unwrap();
            for k in 0..specs.len() {
                let expect: f64 = specs[k..].iter().map(|&(_, s)| s).product();
                let got = st.op(k, Port::Single).selectivity;
                prop_assert!((got - expect).abs() < 1e-9);
            }
        }

        /// HNR ordering is invariant to rescaling all costs by a constant
        /// factor applied to both queries... (scaling K must not change the
        /// relative order of priorities with equal structure).
        #[test]
        fn priority_order_scale_invariant(
            c1 in 1u64..50, s1 in 0.05f64..1.0,
            c2 in 1u64..50, s2 in 0.05f64..1.0,
            scale in 2u64..10,
        ) {
            let a1 = PlanStats::compute(&chain(&[(c1, s1)]), &StreamRates::none()).unwrap().per_leaf[0];
            let a2 = PlanStats::compute(&chain(&[(c2, s2)]), &StreamRates::none()).unwrap().per_leaf[0];
            let b1 = PlanStats::compute(&chain(&[(c1 * scale, s1)]), &StreamRates::none()).unwrap().per_leaf[0];
            let b2 = PlanStats::compute(&chain(&[(c2 * scale, s2)]), &StreamRates::none()).unwrap().per_leaf[0];
            prop_assert_eq!(
                a1.normalized_rate() > a2.normalized_rate(),
                b1.normalized_rate() > b2.normalized_rate()
            );
            prop_assert_eq!(
                a1.output_rate() > a2.output_rate(),
                b1.output_rate() > b2.output_rate()
            );
        }
    }
}
