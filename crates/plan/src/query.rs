//! Query plans: a validated plan tree plus workload metadata.

use hcq_common::{Result, StreamId};

use crate::node::PlanNode;

/// Workload classification tag for per-class QoS breakdowns (Figure 11).
///
/// The paper defines a query *class* by its operators' cost class and
/// selectivity; tuples emitted by queries of the same class are aggregated
/// together when reporting per-class slowdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QueryTag {
    /// Cost class `i` where operator cost is `K · 2^i` (§8 uses `i ∈ [0,4]`).
    pub cost_class: u8,
    /// Selectivity bucket (decile of the operator selectivity, 0–9).
    pub selectivity_bucket: u8,
}

impl QueryTag {
    /// Bucket a selectivity in `(0, 1]` into deciles 0–9.
    pub fn bucket_selectivity(s: f64) -> u8 {
        debug_assert!((0.0..=1.0).contains(&s) && s > 0.0);
        // 0.05 -> 0, 0.15 -> 1, ..., 0.95 -> 9; s = 1.0 caps at 9.
        (((s * 10.0).ceil() as i64 - 1).clamp(0, 9)) as u8
    }
}

/// A validated continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The plan tree; see [`PlanNode`].
    pub root: PlanNode,
    /// Classification tag used for per-class metrics.
    pub tag: QueryTag,
    /// Optional per-query response-time deadline: a tuple whose queueing
    /// delay already exceeds this budget when it reaches the head of a queue
    /// is *expired* (counted, traced, never executed) instead of processed.
    /// `None` (the default) disables expiry for this query.
    pub deadline: Option<hcq_common::Nanos>,
}

impl QueryPlan {
    /// Validate and wrap a plan tree.
    pub fn new(root: PlanNode) -> Result<Self> {
        root.validate_as_root()?;
        Ok(QueryPlan {
            root,
            tag: QueryTag::default(),
            deadline: None,
        })
    }

    /// Validate and wrap a plan tree with a classification tag.
    pub fn with_tag(root: PlanNode, tag: QueryTag) -> Result<Self> {
        root.validate_as_root()?;
        Ok(QueryPlan {
            root,
            tag,
            deadline: None,
        })
    }

    /// True if the query reads exactly one stream (no window joins).
    pub fn is_single_stream(&self) -> bool {
        matches!(self.root, PlanNode::Leaf { .. })
    }

    /// Number of leaves (schedulable entry points).
    pub fn leaf_count(&self) -> usize {
        self.root.leaf_count()
    }

    /// Streams feeding the leaves, left-to-right.
    pub fn leaf_streams(&self) -> Vec<StreamId> {
        self.root.leaf_streams()
    }

    /// Total operator count, including join operators.
    pub fn operator_count(&self) -> usize {
        self.root.operator_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorSpec;
    use hcq_common::Nanos;

    #[test]
    fn new_validates() {
        let ok = PlanNode::Leaf {
            stream: StreamId::new(0),
            ops: vec![OperatorSpec::select(Nanos(10), 0.5)],
        };
        assert!(QueryPlan::new(ok).is_ok());
        let bad = PlanNode::Leaf {
            stream: StreamId::new(0),
            ops: vec![],
        };
        assert!(QueryPlan::new(bad).is_err());
    }

    #[test]
    fn selectivity_buckets() {
        assert_eq!(QueryTag::bucket_selectivity(0.05), 0);
        assert_eq!(QueryTag::bucket_selectivity(0.1), 0);
        assert_eq!(QueryTag::bucket_selectivity(0.11), 1);
        assert_eq!(QueryTag::bucket_selectivity(0.55), 5);
        assert_eq!(QueryTag::bucket_selectivity(0.95), 9);
        assert_eq!(QueryTag::bucket_selectivity(1.0), 9);
    }

    #[test]
    fn single_stream_detection() {
        let single = QueryPlan::new(PlanNode::Leaf {
            stream: StreamId::new(0),
            ops: vec![OperatorSpec::select(Nanos(10), 0.5)],
        })
        .unwrap();
        assert!(single.is_single_stream());
        assert_eq!(single.leaf_count(), 1);
        assert_eq!(single.operator_count(), 1);
    }
}
