//! A minimal strict JSON parser that preserves number text.
//!
//! Trace ids use the full `u64` range — composite tuple ids have the top
//! bit set, which is far past the 2^53 integer ceiling of `f64`. A parser
//! that funnels every number through a float would silently corrupt them,
//! so numbers are kept as their raw source text and converted on access:
//! [`JsonValue::as_u64`] for ids and timestamps (exact), [`JsonValue::as_f64`]
//! for metric values (shortest-roundtrip text parses back to the identical
//! bits the producer formatted).
//!
//! The grammar is full JSON minus two producer-side simplifications we keep
//! strict on purpose: duplicate object keys are rejected (the trace writer
//! never emits them, and silently taking one would mask a malformed line),
//! and input must be UTF-8 text already (`&str`).

use std::fmt;

/// A parsed JSON value. Numbers keep their raw text (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as the exact source text.
    Num(String),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (None on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as an exact `u64` (None for non-numbers, negatives,
    /// fractions, or exponent forms).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The string content.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object fields.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the next char's byte length).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            let mut v = 0u32;
            for _ in 0..4 {
                let d = p.peek().ok_or_else(|| p.err("truncated \\u escape"))?;
                let d = (d as char)
                    .to_digit(16)
                    .ok_or_else(|| p.err("non-hex digit in \\u escape"))?;
                v = v * 16 + d;
                p.pos += 1;
            }
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require \uXXXX low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let lo = hex4(self)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        // Leading zeros: JSON allows "0" and "0.x" but not "01".
        if self.bytes[digits_start] == b'0' && self.pos - digits_start > 1 {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        Ok(JsonValue::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::Str("a\nb".into()));
    }

    #[test]
    fn numbers_keep_raw_text() {
        // 2^63 | 5: unrepresentable in f64; raw text must survive.
        let big = (1u64 << 63) | 5;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        // Floats parse back bit-exactly from shortest-roundtrip text.
        let f = 0.1f64 + 0.2;
        let v = parse(&format!("{f}")).unwrap();
        assert_eq!(v.as_f64().unwrap().to_bits(), f.to_bits());
        assert_eq!(v.as_u64(), None);
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":true},"x"],"c":{"d":null}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("c").unwrap().get("d").unwrap(), &JsonValue::Null);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            JsonValue::Str("Aé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".into())
        );
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"\\x\"",
            "1 2",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
