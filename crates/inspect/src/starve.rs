//! Starvation and anomaly detection.
//!
//! The paper's §5 pathology — FCFS letting one expensive query starve the
//! cheap ones (or HR starving the expensive one) — shows up in a trace as
//! head tuples that sat runnable through many scheduling decisions before
//! being selected. This module surfaces it three ways:
//!
//! - **Episodes**: every selection (run or expiry) whose head-of-queue wait
//!   exceeded a threshold *while the scheduler was making other decisions*
//!   (at least one `SchedulingPoint` fell inside the wait — a wait with no
//!   intervening decision is idleness or a burst, not starvation). The
//!   default threshold is 10× the median positive wait, floored at 1 ms, so
//!   it adapts to the workload's natural queueing scale.
//! - **Selection share vs demand share** per unit: the fraction of
//!   selections a unit received against the fraction of selection-eligible
//!   work (runs + sheds + expiries + failed attempts) it presented. A
//!   strongly negative skew is a unit the policy systematically passed over.
//!   (True priority shares would need the statics table, which the trace
//!   deliberately does not carry; demand share is the observable proxy.)
//! - **Longest-wait timeline**: per unit, the maximum observed head wait.

use crate::event::{InspectEvent, TraceLog};

/// Per-unit selection accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnitShare {
    /// The unit.
    pub unit: u32,
    /// Times the scheduler ran this unit.
    pub selections: u64,
    /// Selection-eligible work the unit presented (runs + sheds + expiries
    /// + failed attempts).
    pub demand: u64,
    /// Fraction of all selections.
    pub selection_share: f64,
    /// Fraction of all demand.
    pub demand_share: f64,
    /// `selection_share − demand_share`; strongly negative = passed over.
    pub skew: f64,
    /// Longest observed head-of-queue wait, ns.
    pub max_wait: u64,
    /// Starvation episodes flagged on this unit.
    pub flagged: u64,
}

/// One flagged starvation episode.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// The starved unit.
    pub unit: u32,
    /// The waiting head tuple.
    pub tuple: u64,
    /// Its arrival, ns.
    pub arrival: u64,
    /// When it was finally selected (run or expired), ns.
    pub selected_at: u64,
    /// The wait, ns.
    pub wait: u64,
    /// Scheduling decisions taken while it waited.
    pub points_missed: u64,
    /// True when the wait ended in expiry rather than a run.
    pub expired: bool,
}

/// The full starvation analysis.
#[derive(Debug, Clone, Default)]
pub struct Starvation {
    /// The wait threshold used, ns.
    pub threshold: u64,
    /// Median positive head wait the threshold derives from, ns.
    pub median_wait: u64,
    /// Per-unit accounting, sorted by unit id.
    pub units: Vec<UnitShare>,
    /// Flagged episodes, longest wait first, capped at [`MAX_EPISODES`].
    pub episodes: Vec<Episode>,
    /// Total episodes flagged (may exceed `episodes.len()`).
    pub flagged_total: u64,
}

/// Cap on reported episodes (the per-unit `flagged` counters are exact).
pub const MAX_EPISODES: usize = 20;

/// Run the detector. `threshold` overrides the adaptive default (ns).
pub fn starvation(log: &TraceLog, threshold: Option<u64>) -> Starvation {
    // Selection instants: UnitRun and Expire consume the head tuple.
    // Sheds and failed attempts count as demand but not selection-with-wait
    // (a shed head never got selected; a failed attempt's wait ends at the
    // retry's UnitRun).
    let mut sched_points: Vec<u64> = Vec::new();
    for ev in &log.events {
        if let InspectEvent::SchedPoint { at, .. } = ev {
            sched_points.push(*at);
        }
    }

    struct Sel {
        unit: u32,
        tuple: u64,
        arrival: u64,
        at: u64,
        expired: bool,
    }
    let mut selections: Vec<Sel> = Vec::new();
    let mut units: Vec<UnitShare> = Vec::new();
    let unit_row = |units: &mut Vec<UnitShare>, u: u32| -> usize {
        match units.binary_search_by_key(&u, |r| r.unit) {
            Ok(i) => i,
            Err(i) => {
                units.insert(
                    i,
                    UnitShare {
                        unit: u,
                        ..UnitShare::default()
                    },
                );
                i
            }
        }
    };
    for ev in &log.events {
        match ev {
            InspectEvent::UnitRun {
                at,
                unit,
                tuple,
                arrival,
                ..
            } => {
                let i = unit_row(&mut units, *unit);
                units[i].selections += 1;
                units[i].demand += 1;
                selections.push(Sel {
                    unit: *unit,
                    tuple: *tuple,
                    arrival: *arrival,
                    at: *at,
                    expired: false,
                });
            }
            InspectEvent::Expire {
                at,
                unit,
                tuple,
                arrival,
                ..
            } => {
                let i = unit_row(&mut units, *unit);
                units[i].selections += 1;
                units[i].demand += 1;
                selections.push(Sel {
                    unit: *unit,
                    tuple: *tuple,
                    arrival: *arrival,
                    at: *at,
                    expired: true,
                });
            }
            InspectEvent::Shed { unit, .. } | InspectEvent::OpFailure { unit, .. } => {
                let i = unit_row(&mut units, *unit);
                units[i].demand += 1;
            }
            _ => {}
        }
    }

    // Adaptive threshold: 10× the median positive wait, floored at 1 ms.
    let mut waits: Vec<u64> = selections
        .iter()
        .map(|s| s.at.saturating_sub(s.arrival))
        .filter(|&w| w > 0)
        .collect();
    waits.sort_unstable();
    let median_wait = if waits.is_empty() {
        0
    } else {
        waits[waits.len() / 2]
    };
    let threshold = threshold.unwrap_or_else(|| (median_wait.saturating_mul(10)).max(1_000_000));

    let total_selections: u64 = units.iter().map(|u| u.selections).sum();
    let total_demand: u64 = units.iter().map(|u| u.demand).sum();
    let mut episodes: Vec<Episode> = Vec::new();
    let mut flagged_total = 0u64;
    for s in &selections {
        let wait = s.at.saturating_sub(s.arrival);
        let i = unit_row(&mut units, s.unit);
        units[i].max_wait = units[i].max_wait.max(wait);
        if wait < threshold {
            continue;
        }
        // Decisions strictly inside (arrival, at]: the scheduler was active
        // and chose someone else (the closing decision itself included).
        let lo = sched_points.partition_point(|&p| p <= s.arrival);
        let hi = sched_points.partition_point(|&p| p <= s.at);
        let points_missed = (hi - lo) as u64;
        if points_missed == 0 {
            continue;
        }
        flagged_total += 1;
        units[i].flagged += 1;
        episodes.push(Episode {
            unit: s.unit,
            tuple: s.tuple,
            arrival: s.arrival,
            selected_at: s.at,
            wait,
            points_missed,
            expired: s.expired,
        });
    }
    episodes.sort_by(|a, b| {
        b.wait
            .cmp(&a.wait)
            .then(a.arrival.cmp(&b.arrival))
            .then(a.unit.cmp(&b.unit))
    });
    episodes.truncate(MAX_EPISODES);

    for u in &mut units {
        u.selection_share = if total_selections == 0 {
            0.0
        } else {
            u.selections as f64 / total_selections as f64
        };
        u.demand_share = if total_demand == 0 {
            0.0
        } else {
            u.demand as f64 / total_demand as f64
        };
        u.skew = u.selection_share - u.demand_share;
    }

    Starvation {
        threshold,
        median_wait,
        units,
        episodes,
        flagged_total,
    }
}

/// Render the starvation report as fixed-width text.
pub fn render(s: &Starvation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "starvation: {} episode(s) flagged (threshold {:.3} ms = max(10x median wait {:.3} ms, 1 ms))\n",
        s.flagged_total,
        s.threshold as f64 * 1e-6,
        s.median_wait as f64 * 1e-6,
    ));
    if !s.episodes.is_empty() {
        out.push_str("unit   tuple                 wait_ms    points_missed  outcome\n");
        for e in &s.episodes {
            out.push_str(&format!(
                "{:<6} {:<21} {:<10.3} {:<14} {}\n",
                e.unit,
                e.tuple,
                e.wait as f64 * 1e-6,
                e.points_missed,
                if e.expired { "expired" } else { "ran" },
            ));
        }
    }
    out.push_str("unit   selections  demand  sel_share  dem_share  skew      max_wait_ms\n");
    for u in &s.units {
        out.push_str(&format!(
            "{:<6} {:<11} {:<7} {:<10.4} {:<10.4} {:<+9.4} {:.3}\n",
            u.unit,
            u.selections,
            u.demand,
            u.selection_share,
            u.demand_share,
            u.skew,
            u.max_wait as f64 * 1e-6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_stream;

    #[test]
    fn flags_long_waits_with_missed_points() {
        // Unit 1's tuple waits 50ms across 3 decisions; unit 0 served fast.
        let ms = |n: u64| n * 1_000_000;
        let lines = [
            format!(
                r#"{{"type":"sched_point","at":{},"candidates":2,"evals":2,"comparisons":1,"cluster_ops":0,"heap_ops":0,"charged":0}}"#,
                ms(1)
            ),
            format!(
                r#"{{"type":"unit_run","at":{},"unit":0,"tuple":1,"arrival":0,"cost":1000,"tuples":1}}"#,
                ms(1)
            ),
            format!(
                r#"{{"type":"sched_point","at":{},"candidates":2,"evals":2,"comparisons":1,"cluster_ops":0,"heap_ops":0,"charged":0}}"#,
                ms(2)
            ),
            format!(
                r#"{{"type":"unit_run","at":{},"unit":0,"tuple":2,"arrival":{},"cost":1000,"tuples":1}}"#,
                ms(2),
                ms(1)
            ),
            format!(
                r#"{{"type":"sched_point","at":{},"candidates":2,"evals":2,"comparisons":1,"cluster_ops":0,"heap_ops":0,"charged":0}}"#,
                ms(50)
            ),
            format!(
                r#"{{"type":"unit_run","at":{},"unit":1,"tuple":3,"arrival":0,"cost":1000,"tuples":1}}"#,
                ms(50)
            ),
            // A shed on unit 1: demand the policy never served.
            format!(
                r#"{{"type":"shed","at":{},"unit":1,"tuple":4,"lineage":4,"arrival":0}}"#,
                ms(50)
            ),
        ];
        let log = parse_stream(&lines.join("\n")).unwrap();
        let s = starvation(&log, None);
        // median positive wait: waits are 1ms, 1ms, 50ms → median 1ms;
        // threshold max(10ms, 1ms) = 10ms.
        assert_eq!(s.threshold, ms(10));
        assert_eq!(s.flagged_total, 1);
        assert_eq!(s.episodes.len(), 1);
        let e = &s.episodes[0];
        assert_eq!((e.unit, e.tuple, e.wait), (1, 3, ms(50)));
        assert_eq!(e.points_missed, 3);
        let u1 = s.units.iter().find(|u| u.unit == 1).unwrap();
        assert_eq!(u1.flagged, 1);
        assert_eq!(u1.max_wait, ms(50));
        assert!(u1.skew < 0.0);
        assert!(render(&s).contains("1 episode(s) flagged"));
    }

    #[test]
    fn no_flag_without_intervening_decisions() {
        // A 50ms wait with zero scheduling points inside is idleness.
        let lines = [
            r#"{"type":"unit_run","at":50000000,"unit":1,"tuple":3,"arrival":0,"cost":1000,"tuples":1}"#,
        ];
        let log = parse_stream(&lines.join("\n")).unwrap();
        let s = starvation(&log, Some(1_000_000));
        assert_eq!(s.flagged_total, 0);
    }

    #[test]
    fn empty_trace_is_quiet() {
        let s = starvation(&TraceLog::default(), None);
        assert_eq!(s.flagged_total, 0);
        assert!(s.units.is_empty());
        assert_eq!(s.threshold, 1_000_000);
    }
}
