//! Span reconstruction: from a flat event stream to one span per tuple
//! outcome, with the response time decomposed into disjoint components.
//!
//! The engine guarantees stream structure (see `TraceSink::event` docs):
//! each `UnitRun` is immediately followed by the `Emit`/`Shed` events its
//! execution produced, so an emission belongs to the nearest preceding
//! `UnitRun` — positional association, no ids needed. Ids still matter for
//! the quarantine component: a failed attempt leaves an `OpFailure` keyed by
//! `(unit, tuple)`, and the eventual successful run of the same key closes
//! the gap.
//!
//! Decomposition of an emitted span (arrival `a`, first attempt `f`, run
//! start `r`, emission `e`):
//!
//! - `service`    = `e − r` — executing the winning run.
//! - `quarantine` = `r − f` — failed-attempt charges plus cooldown parking
//!   (zero when the first attempt succeeded, i.e. `f == r`).
//! - `governed`   = overlap of `[a, f)` with windows where the governor had
//!   moved the admission mode off the run's baseline — wait the overload
//!   response induced.
//! - `wait`       = `(f − a) − governed` — plain queue wait.
//!
//! The four sum to `e − a` exactly, in integer nanoseconds — the waterfall
//! conservation property `repro inspect` prints and CI greps. Shed and
//! expired tuples get the same treatment with `service = 0` and the event's
//! own timestamp closing the span.
//!
//! One honest caveat: for a composite (join) emission whose probing tuple
//! failed before its partner arrived, `f` can precede `a` (the composite's
//! Definition-5 arrival is the max over constituents). `f` is clamped to
//! `a`; the pre-arrival failure time folds into `quarantine`.

use std::collections::HashMap;

use crate::event::{InspectEvent, TraceLog};

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Reached a query root.
    Emitted,
    /// Shed by the overload manager.
    Shed,
    /// Expired at dequeue past its deadline.
    Expired,
}

/// One tuple's reconstructed lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// How the span ended.
    pub outcome: Outcome,
    /// The emitting/expiring query (None for sheds, which are unit-scoped).
    pub query: Option<u32>,
    /// The unit that closed the span.
    pub unit: u32,
    /// The closing tuple id (composite for join outputs).
    pub tuple: u64,
    /// The lineage id (Emit/Shed carry it; expires fall back to `tuple`).
    pub lineage: u64,
    /// System arrival, ns.
    pub arrival: u64,
    /// Start of the winning run (== `end` for sheds/expires), ns.
    pub run_start: u64,
    /// Span close: emission, shed, or expiry time, ns.
    pub end: u64,
    /// Slowdown `H` for emissions, 0 otherwise.
    pub slowdown: f64,
    /// Plain queue wait, ns.
    pub wait: u64,
    /// Governor-induced wait, ns.
    pub governed: u64,
    /// Failed attempts + cooldown parking, ns.
    pub quarantine: u64,
    /// Winning-run execution time, ns.
    pub service: u64,
}

impl Span {
    /// Total response time, ns.
    pub fn response(&self) -> u64 {
        self.end - self.arrival
    }

    /// Whether the components re-sum to the response exactly.
    pub fn conserves(&self) -> bool {
        self.wait + self.governed + self.quarantine + self.service == self.response()
    }
}

/// The reconstructed view of one trace.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    /// One span per Emit/Shed/Expire event, in stream order.
    pub spans: Vec<Span>,
    /// Half-open windows `[start, end)` where the admission mode was off its
    /// baseline (the last window may be open to `u64::MAX`).
    pub governed_windows: Vec<(u64, u64)>,
}

/// Total overlap of `[lo, hi)` with the governed windows.
fn governed_overlap(windows: &[(u64, u64)], lo: u64, hi: u64) -> u64 {
    let mut total = 0;
    for &(s, e) in windows {
        let s = s.max(lo);
        let e = e.min(hi);
        if s < e {
            total += e - s;
        }
    }
    total
}

/// Reconstruct spans from a parsed trace. Errors on streams that violate
/// the engine's ordering contract (an emission with no preceding run).
pub fn reconstruct(log: &TraceLog) -> Result<SpanLog, String> {
    // Pass 1: governed windows. Baseline = the `from` of the first
    // transition (a governed run starts on its configured rung; every
    // departure from it is governor-induced).
    let mut governed_windows = Vec::new();
    let mut baseline: Option<&str> = None;
    let mut open: Option<u64> = None;
    for ev in &log.events {
        if let InspectEvent::Governor { at, from, to, .. } = ev {
            let base = *baseline.get_or_insert(from.as_str());
            match (open, to.as_str() != base) {
                (None, true) => open = Some(*at),
                (Some(s), false) => {
                    governed_windows.push((s, *at));
                    open = None;
                }
                _ => {}
            }
        }
    }
    if let Some(s) = open {
        governed_windows.push((s, u64::MAX));
    }

    // Pass 2: first failed-attempt time per (unit, tuple).
    let mut first_failure: HashMap<(u32, u64), u64> = HashMap::new();
    for ev in &log.events {
        if let InspectEvent::OpFailure {
            at, unit, tuple, ..
        } = ev
        {
            first_failure.entry((*unit, *tuple)).or_insert(*at);
        }
    }

    // Pass 3: spans.
    let mut spans = Vec::new();
    let mut last_run: Option<(u64, u32, u64)> = None; // (at, unit, tuple)
    for (i, ev) in log.events.iter().enumerate() {
        match ev {
            InspectEvent::UnitRun {
                at, unit, tuple, ..
            } => last_run = Some((*at, *unit, *tuple)),
            InspectEvent::Emit {
                at,
                unit,
                query,
                tuple,
                lineage,
                arrival,
                slowdown,
            } => {
                let (run_at, run_unit, run_tuple) = last_run
                    .ok_or_else(|| format!("event {i}: emit with no preceding unit_run"))?;
                if run_unit != *unit {
                    return Err(format!(
                        "event {i}: emit on unit {unit} but last run was unit {run_unit}"
                    ));
                }
                let f = first_failure
                    .get(&(run_unit, run_tuple))
                    .copied()
                    .unwrap_or(run_at)
                    .clamp(*arrival, run_at);
                let governed = governed_overlap(&governed_windows, *arrival, f);
                spans.push(Span {
                    outcome: Outcome::Emitted,
                    query: Some(*query),
                    unit: *unit,
                    tuple: *tuple,
                    lineage: *lineage,
                    arrival: *arrival,
                    run_start: run_at,
                    end: *at,
                    slowdown: *slowdown,
                    wait: (f - *arrival) - governed,
                    governed,
                    quarantine: run_at - f,
                    service: *at - run_at,
                });
            }
            InspectEvent::Shed {
                at,
                unit,
                tuple,
                lineage,
                arrival,
            } => {
                let f = first_failure
                    .get(&(*unit, *tuple))
                    .copied()
                    .unwrap_or(*at)
                    .clamp(*arrival, *at);
                let governed = governed_overlap(&governed_windows, *arrival, f);
                spans.push(Span {
                    outcome: Outcome::Shed,
                    query: None,
                    unit: *unit,
                    tuple: *tuple,
                    lineage: *lineage,
                    arrival: *arrival,
                    run_start: *at,
                    end: *at,
                    slowdown: 0.0,
                    wait: (f - *arrival) - governed,
                    governed,
                    quarantine: *at - f,
                    service: 0,
                });
            }
            InspectEvent::Expire {
                at,
                unit,
                query,
                tuple,
                arrival,
                ..
            } => {
                let f = first_failure
                    .get(&(*unit, *tuple))
                    .copied()
                    .unwrap_or(*at)
                    .clamp(*arrival, *at);
                let governed = governed_overlap(&governed_windows, *arrival, f);
                spans.push(Span {
                    outcome: Outcome::Expired,
                    query: Some(*query),
                    unit: *unit,
                    tuple: *tuple,
                    lineage: *tuple,
                    arrival: *arrival,
                    run_start: *at,
                    end: *at,
                    slowdown: 0.0,
                    wait: (f - *arrival) - governed,
                    governed,
                    quarantine: *at - f,
                    service: 0,
                });
            }
            _ => {}
        }
    }
    Ok(SpanLog {
        spans,
        governed_windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_stream;

    fn log(lines: &[&str]) -> TraceLog {
        parse_stream(&lines.join("\n")).unwrap()
    }

    #[test]
    fn emit_decomposes_into_wait_and_service() {
        let l = log(&[
            r#"{"type":"sched_point","at":0,"candidates":1,"evals":1,"comparisons":0,"cluster_ops":0,"heap_ops":0,"charged":0}"#,
            r#"{"type":"unit_run","at":50,"unit":1,"tuple":3,"arrival":10,"cost":25,"tuples":1}"#,
            r#"{"type":"emit","at":75,"unit":1,"query":0,"tuple":3,"lineage":3,"arrival":10,"slowdown":2.0}"#,
        ]);
        let s = &reconstruct(&l).unwrap().spans[0];
        assert_eq!(s.outcome, Outcome::Emitted);
        assert_eq!(
            (s.wait, s.governed, s.quarantine, s.service),
            (40, 0, 0, 25)
        );
        assert_eq!(s.response(), 65);
        assert!(s.conserves());
    }

    #[test]
    fn failed_attempts_become_quarantine() {
        let l = log(&[
            r#"{"type":"op_failure","at":30,"unit":1,"tuple":3,"cost":5,"attempt":0,"retrying":true}"#,
            r#"{"type":"unit_run","at":90,"unit":1,"tuple":3,"arrival":10,"cost":25,"tuples":1}"#,
            r#"{"type":"emit","at":115,"unit":1,"query":0,"tuple":3,"lineage":3,"arrival":10,"slowdown":2.0}"#,
        ]);
        let s = &reconstruct(&l).unwrap().spans[0];
        // wait 10→30, quarantine 30→90, service 90→115.
        assert_eq!(
            (s.wait, s.governed, s.quarantine, s.service),
            (20, 0, 60, 25)
        );
        assert!(s.conserves());
    }

    #[test]
    fn governed_windows_split_the_wait() {
        let l = log(&[
            r#"{"type":"governor","at":20,"from":"Unbounded","to":"DropTail","pending":9,"share":0.9}"#,
            r#"{"type":"governor","at":40,"from":"DropTail","to":"Unbounded","pending":1,"share":0.1}"#,
            r#"{"type":"unit_run","at":60,"unit":0,"tuple":1,"arrival":0,"cost":10,"tuples":1}"#,
            r#"{"type":"emit","at":70,"unit":0,"query":0,"tuple":1,"lineage":1,"arrival":0,"slowdown":1.0}"#,
        ]);
        let out = reconstruct(&l).unwrap();
        assert_eq!(out.governed_windows, vec![(20, 40)]);
        let s = &out.spans[0];
        assert_eq!(
            (s.wait, s.governed, s.quarantine, s.service),
            (40, 20, 0, 10)
        );
        assert!(s.conserves());
    }

    #[test]
    fn governed_window_left_open_at_stream_end() {
        let l = log(&[
            r#"{"type":"governor","at":20,"from":"Unbounded","to":"QosShed","pending":9,"share":0.9}"#,
            r#"{"type":"shed","at":50,"unit":2,"tuple":8,"lineage":8,"arrival":30}"#,
        ]);
        let out = reconstruct(&l).unwrap();
        assert_eq!(out.governed_windows, vec![(20, u64::MAX)]);
        let s = &out.spans[0];
        assert_eq!(s.outcome, Outcome::Shed);
        // The whole 30→50 wait fell inside the governed window.
        assert_eq!((s.wait, s.governed, s.quarantine, s.service), (0, 20, 0, 0));
        assert!(s.conserves());
    }

    #[test]
    fn expire_is_all_wait() {
        let l = log(&[
            r#"{"type":"expire","at":90,"unit":1,"query":3,"tuple":4,"arrival":10,"late_by":30}"#,
        ]);
        let s = &reconstruct(&l).unwrap().spans[0];
        assert_eq!(s.outcome, Outcome::Expired);
        assert_eq!(s.query, Some(3));
        assert_eq!((s.wait, s.governed, s.quarantine, s.service), (80, 0, 0, 0));
        assert!(s.conserves());
    }

    #[test]
    fn composite_arrival_after_probe_failure_clamps() {
        // Probe (tuple 3) fails at 30; partner arrives later so the
        // composite's arrival (70) postdates the failure. f clamps to a.
        let l = log(&[
            r#"{"type":"op_failure","at":30,"unit":1,"tuple":3,"cost":5,"attempt":0,"retrying":true}"#,
            r#"{"type":"unit_run","at":90,"unit":1,"tuple":3,"arrival":10,"cost":25,"tuples":1}"#,
            r#"{"type":"emit","at":115,"unit":1,"query":0,"tuple":9223372036854775811,"lineage":5,"arrival":70,"slowdown":1.0}"#,
        ]);
        let s = &reconstruct(&l).unwrap().spans[0];
        assert_eq!(
            (s.wait, s.governed, s.quarantine, s.service),
            (0, 0, 20, 25)
        );
        assert!(s.conserves());
    }

    #[test]
    fn emit_without_run_is_contract_violation() {
        let l = log(&[
            r#"{"type":"emit","at":75,"unit":1,"query":0,"tuple":3,"lineage":3,"arrival":10,"slowdown":2.0}"#,
        ]);
        assert!(reconstruct(&l).is_err());
    }
}
