//! Parsed trace events and the JSONL stream reader.
//!
//! [`InspectEvent`] is the owned mirror of the engine's `TraceEvent`: same
//! variants, same fields, `String` where the engine uses `&'static str` and
//! plain `u64` nanoseconds where it uses `Nanos`. The mapping is exact —
//! `parse(render(event)) == event` for every variant (property-tested in
//! `tests/roundtrip.rs` via the `PartialEq<TraceEvent>` impl below).
//!
//! A trace file may interleave non-event lines: `repro monitor` telemetry
//! snapshots (`"type":"telemetry"`) and future event types. [`parse_stream`]
//! tolerates both, counting rather than failing, so inspect keeps working
//! across trace-schema growth; anything that is not a JSON object with a
//! string `type` is a hard error.

use hcq_common::Nanos;
use hcq_engine::TraceEvent;

use crate::json::{self, JsonValue};

/// One parsed scheduler-visible event. See `hcq_engine::trace::TraceEvent`
/// for field semantics; times are virtual nanoseconds.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field semantics documented on hcq_engine::TraceEvent
pub enum InspectEvent {
    /// A scheduling decision with its itemized work counters.
    SchedPoint {
        at: u64,
        candidates: u64,
        evals: u64,
        comparisons: u64,
        cluster_ops: u64,
        heap_ops: u64,
        charged: u64,
    },
    /// One unit execution.
    UnitRun {
        at: u64,
        unit: u32,
        tuple: u64,
        arrival: u64,
        cost: u64,
        tuples: u64,
    },
    /// A root emission.
    Emit {
        at: u64,
        unit: u32,
        query: u32,
        tuple: u64,
        lineage: u64,
        arrival: u64,
        slowdown: f64,
    },
    /// A shed tuple.
    Shed {
        at: u64,
        unit: u32,
        tuple: u64,
        lineage: u64,
        arrival: u64,
    },
    /// A run-scoped fault injection.
    Fault {
        at: u64,
        kind: String,
        magnitude: f64,
    },
    /// A deadline expiry at dequeue.
    Expire {
        at: u64,
        unit: u32,
        query: u32,
        tuple: u64,
        arrival: u64,
        late_by: u64,
    },
    /// A governor admission-ladder step.
    Governor {
        at: u64,
        from: String,
        to: String,
        pending: u64,
        share: f64,
    },
    /// A governor policy switch.
    PolicySwitch {
        at: u64,
        from: String,
        to: String,
        share: f64,
    },
    /// A transient operator failure.
    OpFailure {
        at: u64,
        unit: u32,
        tuple: u64,
        cost: u64,
        attempt: u32,
        retrying: bool,
    },
}

impl InspectEvent {
    /// The event's virtual timestamp.
    pub fn at(&self) -> u64 {
        match self {
            InspectEvent::SchedPoint { at, .. }
            | InspectEvent::UnitRun { at, .. }
            | InspectEvent::Emit { at, .. }
            | InspectEvent::Shed { at, .. }
            | InspectEvent::Fault { at, .. }
            | InspectEvent::Expire { at, .. }
            | InspectEvent::Governor { at, .. }
            | InspectEvent::PolicySwitch { at, .. }
            | InspectEvent::OpFailure { at, .. } => *at,
        }
    }
}

impl PartialEq<TraceEvent> for InspectEvent {
    fn eq(&self, other: &TraceEvent) -> bool {
        let ns = |n: &Nanos| n.as_nanos();
        match (self, other) {
            (
                InspectEvent::SchedPoint {
                    at,
                    candidates,
                    evals,
                    comparisons,
                    cluster_ops,
                    heap_ops,
                    charged,
                },
                TraceEvent::SchedulingPoint {
                    at: at2,
                    candidates_scanned,
                    priority_evals,
                    comparisons: comparisons2,
                    cluster_ops: cluster_ops2,
                    heap_ops: heap_ops2,
                    charged: charged2,
                },
            ) => {
                *at == ns(at2)
                    && candidates == candidates_scanned
                    && evals == priority_evals
                    && comparisons == comparisons2
                    && cluster_ops == cluster_ops2
                    && heap_ops == heap_ops2
                    && *charged == ns(charged2)
            }
            (
                InspectEvent::UnitRun {
                    at,
                    unit,
                    tuple,
                    arrival,
                    cost,
                    tuples,
                },
                TraceEvent::UnitRun {
                    at: at2,
                    unit: unit2,
                    tuple: tuple2,
                    arrival: arrival2,
                    cost: cost2,
                    tuples: tuples2,
                },
            ) => {
                *at == ns(at2)
                    && unit == unit2
                    && tuple == tuple2
                    && *arrival == ns(arrival2)
                    && *cost == ns(cost2)
                    && tuples == tuples2
            }
            (
                InspectEvent::Emit {
                    at,
                    unit,
                    query,
                    tuple,
                    lineage,
                    arrival,
                    slowdown,
                },
                TraceEvent::Emit {
                    at: at2,
                    unit: unit2,
                    query: query2,
                    tuple: tuple2,
                    lineage: lineage2,
                    arrival: arrival2,
                    slowdown: slowdown2,
                },
            ) => {
                *at == ns(at2)
                    && unit == unit2
                    && query == query2
                    && tuple == tuple2
                    && lineage == lineage2
                    && *arrival == ns(arrival2)
                    && slowdown == slowdown2
            }
            (
                InspectEvent::Shed {
                    at,
                    unit,
                    tuple,
                    lineage,
                    arrival,
                },
                TraceEvent::Shed {
                    at: at2,
                    unit: unit2,
                    tuple: tuple2,
                    lineage: lineage2,
                    arrival: arrival2,
                },
            ) => {
                *at == ns(at2)
                    && unit == unit2
                    && tuple == tuple2
                    && lineage == lineage2
                    && *arrival == ns(arrival2)
            }
            (
                InspectEvent::Fault {
                    at,
                    kind,
                    magnitude,
                },
                TraceEvent::Fault {
                    at: at2,
                    kind: kind2,
                    magnitude: magnitude2,
                },
            ) => *at == ns(at2) && kind == kind2 && magnitude == magnitude2,
            (
                InspectEvent::Expire {
                    at,
                    unit,
                    query,
                    tuple,
                    arrival,
                    late_by,
                },
                TraceEvent::Expire {
                    at: at2,
                    unit: unit2,
                    query: query2,
                    tuple: tuple2,
                    arrival: arrival2,
                    late_by: late_by2,
                },
            ) => {
                *at == ns(at2)
                    && unit == unit2
                    && query == query2
                    && tuple == tuple2
                    && *arrival == ns(arrival2)
                    && *late_by == ns(late_by2)
            }
            (
                InspectEvent::Governor {
                    at,
                    from,
                    to,
                    pending,
                    share,
                },
                TraceEvent::GovernorTransition {
                    at: at2,
                    from: from2,
                    to: to2,
                    pending: pending2,
                    share: share2,
                },
            ) => {
                *at == ns(at2)
                    && from == from2
                    && to == to2
                    && pending == pending2
                    && share == share2
            }
            (
                InspectEvent::PolicySwitch {
                    at,
                    from,
                    to,
                    share,
                },
                TraceEvent::PolicySwitch {
                    at: at2,
                    from: from2,
                    to: to2,
                    share: share2,
                },
            ) => *at == ns(at2) && from == from2 && to == to2 && share == share2,
            (
                InspectEvent::OpFailure {
                    at,
                    unit,
                    tuple,
                    cost,
                    attempt,
                    retrying,
                },
                TraceEvent::OpFailure {
                    at: at2,
                    unit: unit2,
                    tuple: tuple2,
                    cost: cost2,
                    attempt: attempt2,
                    retrying: retrying2,
                },
            ) => {
                *at == ns(at2)
                    && unit == unit2
                    && tuple == tuple2
                    && *cost == ns(cost2)
                    && attempt == attempt2
                    && retrying == retrying2
            }
            _ => false,
        }
    }
}

/// One classified trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum Line {
    /// A scheduler event.
    Event(InspectEvent),
    /// A `repro monitor` telemetry snapshot (tolerated, not analyzed here).
    Telemetry,
    /// A JSON object with an unrecognized `type` (tolerated for forward
    /// compatibility); carries the type tag.
    Unknown(String),
}

/// A fully parsed trace stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Scheduler events, in stream order.
    pub events: Vec<InspectEvent>,
    /// Interleaved telemetry snapshot lines skipped.
    pub telemetry_lines: usize,
    /// Lines with an unrecognized `type` tag skipped.
    pub unknown_lines: usize,
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field \"{key}\""))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field \"{key}\" is not a u64"))
}

fn u32_field(v: &JsonValue, key: &str) -> Result<u32, String> {
    u64_field(v, key)?
        .try_into()
        .map_err(|_| format!("field \"{key}\" exceeds u32"))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field \"{key}\" is not a number"))
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field \"{key}\" is not a string"))?
        .to_string())
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field \"{key}\" is not a bool"))
}

/// Parse one JSONL line into an event, a tolerated non-event, or an error.
pub fn parse_line(line: &str) -> Result<Line, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let ty = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("object has no string \"type\" field")?;
    let ev = match ty {
        "sched_point" => InspectEvent::SchedPoint {
            at: u64_field(&v, "at")?,
            candidates: u64_field(&v, "candidates")?,
            evals: u64_field(&v, "evals")?,
            comparisons: u64_field(&v, "comparisons")?,
            cluster_ops: u64_field(&v, "cluster_ops")?,
            heap_ops: u64_field(&v, "heap_ops")?,
            charged: u64_field(&v, "charged")?,
        },
        "unit_run" => InspectEvent::UnitRun {
            at: u64_field(&v, "at")?,
            unit: u32_field(&v, "unit")?,
            tuple: u64_field(&v, "tuple")?,
            arrival: u64_field(&v, "arrival")?,
            cost: u64_field(&v, "cost")?,
            tuples: u64_field(&v, "tuples")?,
        },
        "emit" => InspectEvent::Emit {
            at: u64_field(&v, "at")?,
            unit: u32_field(&v, "unit")?,
            query: u32_field(&v, "query")?,
            tuple: u64_field(&v, "tuple")?,
            lineage: u64_field(&v, "lineage")?,
            arrival: u64_field(&v, "arrival")?,
            slowdown: f64_field(&v, "slowdown")?,
        },
        "shed" => InspectEvent::Shed {
            at: u64_field(&v, "at")?,
            unit: u32_field(&v, "unit")?,
            tuple: u64_field(&v, "tuple")?,
            lineage: u64_field(&v, "lineage")?,
            arrival: u64_field(&v, "arrival")?,
        },
        "fault" => InspectEvent::Fault {
            at: u64_field(&v, "at")?,
            kind: str_field(&v, "kind")?,
            magnitude: f64_field(&v, "magnitude")?,
        },
        "expire" => InspectEvent::Expire {
            at: u64_field(&v, "at")?,
            unit: u32_field(&v, "unit")?,
            query: u32_field(&v, "query")?,
            tuple: u64_field(&v, "tuple")?,
            arrival: u64_field(&v, "arrival")?,
            late_by: u64_field(&v, "late_by")?,
        },
        "governor" => InspectEvent::Governor {
            at: u64_field(&v, "at")?,
            from: str_field(&v, "from")?,
            to: str_field(&v, "to")?,
            pending: u64_field(&v, "pending")?,
            share: f64_field(&v, "share")?,
        },
        "policy_switch" => InspectEvent::PolicySwitch {
            at: u64_field(&v, "at")?,
            from: str_field(&v, "from")?,
            to: str_field(&v, "to")?,
            share: f64_field(&v, "share")?,
        },
        "op_failure" => InspectEvent::OpFailure {
            at: u64_field(&v, "at")?,
            unit: u32_field(&v, "unit")?,
            tuple: u64_field(&v, "tuple")?,
            cost: u64_field(&v, "cost")?,
            attempt: u32_field(&v, "attempt")?,
            retrying: bool_field(&v, "retrying")?,
        },
        "telemetry" => return Ok(Line::Telemetry),
        other => return Ok(Line::Unknown(other.to_string())),
    };
    Ok(Line::Event(ev))
}

/// Parse a whole JSONL trace. Empty lines are skipped; a malformed line
/// fails the parse with its 1-based line number.
pub fn parse_stream(text: &str) -> Result<TraceLog, String> {
    let mut log = TraceLog::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))? {
            Line::Event(ev) => log.events.push(ev),
            Line::Telemetry => log.telemetry_lines += 1,
            Line::Unknown(_) => log.unknown_lines += 1,
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_an_emit_line() {
        let line = "{\"type\":\"emit\",\"at\":1011,\"unit\":2,\"query\":2,\
                    \"tuple\":7,\"lineage\":7,\"arrival\":4,\"slowdown\":1.5}";
        assert_eq!(
            parse_line(line).unwrap(),
            Line::Event(InspectEvent::Emit {
                at: 1011,
                unit: 2,
                query: 2,
                tuple: 7,
                lineage: 7,
                arrival: 4,
                slowdown: 1.5,
            })
        );
    }

    #[test]
    fn composite_ids_survive_exactly() {
        let id = (1u64 << 63) | 3;
        let line = format!(
            "{{\"type\":\"shed\",\"at\":5,\"unit\":0,\"tuple\":{id},\
             \"lineage\":{id},\"arrival\":1}}"
        );
        match parse_line(&line).unwrap() {
            Line::Event(InspectEvent::Shed { tuple, lineage, .. }) => {
                assert_eq!(tuple, id);
                assert_eq!(lineage, id);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn tolerates_telemetry_and_unknown_types() {
        let text = "{\"type\":\"telemetry\",\"at\":0,\"seq\":0,\"metrics\":[]}\n\
                    \n\
                    {\"type\":\"sched_point\",\"at\":5,\"candidates\":1,\"evals\":1,\
                    \"comparisons\":0,\"cluster_ops\":0,\"heap_ops\":0,\"charged\":0}\n\
                    {\"type\":\"wormhole\",\"at\":9}\n";
        let log = parse_stream(text).unwrap();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.telemetry_lines, 1);
        assert_eq!(log.unknown_lines, 1);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "{\"type\":\"shed\",\"at\":5,\"unit\":0,\"tuple\":1,\
                    \"lineage\":1,\"arrival\":0}\n{\"type\":\"shed\"}\n";
        let err = parse_stream(text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn missing_type_is_an_error() {
        assert!(parse_line("{\"at\":1}").is_err());
        assert!(parse_line("[1,2]").is_err());
    }
}
