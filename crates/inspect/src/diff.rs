//! Run-vs-run decision diffing.
//!
//! Two traces of the same workload under different configurations (policy A
//! vs B, static vs governed, adaptive on vs off) are aligned at scheduling-
//! point granularity: the k-th decision in each trace is the k-th
//! `SchedulingPoint`, and its outcome is the ordered list of units the
//! scheduler consumed before the next decision (runs, expiries, and failed
//! attempts — everything that dequeued a head tuple). The first index where
//! the outcomes differ is the first divergent decision; everything after it
//! is downstream of that choice. Virtual times are reported but not
//! compared — costs differ across runs, decision *ordinals* are the stable
//! axis.
//!
//! The per-query QoS delta table then quantifies what the divergence bought:
//! emitted counts and mean/max slowdown per query in each run, side by side.

use crate::event::{InspectEvent, TraceLog};

/// One scheduling decision and the units it consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Zero-based decision ordinal.
    pub ordinal: u64,
    /// Virtual time of the decision, ns.
    pub at: u64,
    /// Units dequeued before the next decision, in order.
    pub units: Vec<u32>,
}

/// Extract the decision sequence from a trace.
pub fn decisions(log: &TraceLog) -> Vec<Decision> {
    let mut out: Vec<Decision> = Vec::new();
    for ev in &log.events {
        match ev {
            InspectEvent::SchedPoint { at, .. } => out.push(Decision {
                ordinal: out.len() as u64,
                at: *at,
                units: Vec::new(),
            }),
            InspectEvent::UnitRun { unit, .. }
            | InspectEvent::Expire { unit, .. }
            | InspectEvent::OpFailure { unit, .. } => {
                if let Some(d) = out.last_mut() {
                    d.units.push(*unit);
                }
            }
            _ => {}
        }
    }
    out
}

/// The first decision where two runs chose differently.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Zero-based ordinal of the divergent decision.
    pub ordinal: u64,
    /// Virtual time of that decision in run A, ns.
    pub at_a: u64,
    /// Virtual time in run B, ns.
    pub at_b: u64,
    /// Units run A consumed at that decision.
    pub units_a: Vec<u32>,
    /// Units run B consumed.
    pub units_b: Vec<u32>,
}

/// One query's QoS in both runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryDelta {
    /// The query id.
    pub query: u32,
    /// Emissions in run A.
    pub emitted_a: u64,
    /// Emissions in run B.
    pub emitted_b: u64,
    /// Mean slowdown in run A.
    pub avg_slowdown_a: f64,
    /// Mean slowdown in run B.
    pub avg_slowdown_b: f64,
    /// Max slowdown in run A.
    pub max_slowdown_a: f64,
    /// Max slowdown in run B.
    pub max_slowdown_b: f64,
}

/// The full diff of two runs.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Scheduling points in run A.
    pub points_a: u64,
    /// Scheduling points in run B.
    pub points_b: u64,
    /// The first divergent decision (None when one run's decision sequence
    /// is a prefix of the other's — including identical runs).
    pub divergence: Option<Divergence>,
    /// Per-query QoS side by side, sorted by query id.
    pub queries: Vec<QueryDelta>,
}

fn per_query_qos(log: &TraceLog, out: &mut Vec<QueryDelta>, side_a: bool) {
    for ev in &log.events {
        if let InspectEvent::Emit {
            query, slowdown, ..
        } = ev
        {
            let i = match out.binary_search_by_key(query, |d| d.query) {
                Ok(i) => i,
                Err(i) => {
                    out.insert(
                        i,
                        QueryDelta {
                            query: *query,
                            ..QueryDelta::default()
                        },
                    );
                    i
                }
            };
            let d = &mut out[i];
            // Accumulate the sum in avg_* and divide at the end.
            if side_a {
                d.emitted_a += 1;
                d.avg_slowdown_a += slowdown;
                d.max_slowdown_a = d.max_slowdown_a.max(*slowdown);
            } else {
                d.emitted_b += 1;
                d.avg_slowdown_b += slowdown;
                d.max_slowdown_b = d.max_slowdown_b.max(*slowdown);
            }
        }
    }
}

/// Diff two parsed traces (A = baseline, B = candidate).
pub fn diff(a: &TraceLog, b: &TraceLog) -> DiffReport {
    let da = decisions(a);
    let db = decisions(b);
    let mut divergence = None;
    for (x, y) in da.iter().zip(db.iter()) {
        if x.units != y.units {
            divergence = Some(Divergence {
                ordinal: x.ordinal,
                at_a: x.at,
                at_b: y.at,
                units_a: x.units.clone(),
                units_b: y.units.clone(),
            });
            break;
        }
    }
    let mut queries = Vec::new();
    per_query_qos(a, &mut queries, true);
    per_query_qos(b, &mut queries, false);
    for d in &mut queries {
        if d.emitted_a > 0 {
            d.avg_slowdown_a /= d.emitted_a as f64;
        }
        if d.emitted_b > 0 {
            d.avg_slowdown_b /= d.emitted_b as f64;
        }
    }
    DiffReport {
        points_a: da.len() as u64,
        points_b: db.len() as u64,
        divergence,
        queries,
    }
}

fn units_str(units: &[u32]) -> String {
    if units.is_empty() {
        "-".to_string()
    } else {
        units
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Render the diff as fixed-width text.
pub fn render(r: &DiffReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "decision points: {} (A) vs {} (B)\n",
        r.points_a, r.points_b
    ));
    match &r.divergence {
        Some(d) => out.push_str(&format!(
            "first divergent decision: #{} — A@{}ns ran unit(s) {}, B@{}ns ran unit(s) {}\n",
            d.ordinal,
            d.at_a,
            units_str(&d.units_a),
            d.at_b,
            units_str(&d.units_b),
        )),
        None => out.push_str("no divergent decision (one run prefixes the other)\n"),
    }
    out.push_str(
        "query  emitted_A  emitted_B  avg_slowdown_A  avg_slowdown_B  \
         max_slowdown_A  max_slowdown_B\n",
    );
    for q in &r.queries {
        out.push_str(&format!(
            "{:<6} {:<10} {:<10} {:<15.3} {:<15.3} {:<15.3} {:.3}\n",
            q.query,
            q.emitted_a,
            q.emitted_b,
            q.avg_slowdown_a,
            q.avg_slowdown_b,
            q.max_slowdown_a,
            q.max_slowdown_b,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_stream;

    fn trace(selections: &[(u64, u32)], emits: &[(u32, f64)]) -> TraceLog {
        let mut lines = Vec::new();
        for (at, unit) in selections {
            lines.push(format!(
                r#"{{"type":"sched_point","at":{at},"candidates":1,"evals":1,"comparisons":0,"cluster_ops":0,"heap_ops":0,"charged":0}}"#
            ));
            lines.push(format!(
                r#"{{"type":"unit_run","at":{at},"unit":{unit},"tuple":1,"arrival":0,"cost":10,"tuples":0}}"#
            ));
        }
        for (i, (query, slowdown)) in emits.iter().enumerate() {
            lines.push(format!(
                r#"{{"type":"unit_run","at":900,"unit":{query},"tuple":{i},"arrival":0,"cost":10,"tuples":1}}"#
            ));
            lines.push(format!(
                r#"{{"type":"emit","at":901,"unit":{query},"query":{query},"tuple":{i},"lineage":{i},"arrival":0,"slowdown":{slowdown}}}"#
            ));
        }
        parse_stream(&lines.join("\n")).unwrap()
    }

    #[test]
    fn finds_first_divergent_decision() {
        let a = trace(&[(10, 0), (20, 1), (30, 2)], &[]);
        let b = trace(&[(10, 0), (25, 2), (30, 2)], &[]);
        let r = diff(&a, &b);
        let d = r.divergence.clone().expect("runs diverge");
        assert_eq!(d.ordinal, 1);
        assert_eq!((d.at_a, d.at_b), (20, 25));
        assert_eq!(
            (d.units_a.as_slice(), d.units_b.as_slice()),
            (&[1u32][..], &[2u32][..])
        );
        assert!(render(&r).contains("first divergent decision: #1"));
    }

    #[test]
    fn identical_runs_do_not_diverge() {
        let a = trace(&[(10, 0), (20, 1)], &[(0, 1.5)]);
        let b = trace(&[(10, 0), (20, 1)], &[(0, 2.5)]);
        let r = diff(&a, &b);
        assert!(r.divergence.is_none());
        assert_eq!(r.queries.len(), 1);
        let q = &r.queries[0];
        assert_eq!((q.emitted_a, q.emitted_b), (1, 1));
        assert_eq!((q.avg_slowdown_a, q.avg_slowdown_b), (1.5, 2.5));
    }

    #[test]
    fn pre_decision_events_are_ignored() {
        // A unit_run before any sched_point (never produced by the engine)
        // must not panic.
        let log = parse_stream(
            r#"{"type":"unit_run","at":5,"unit":0,"tuple":1,"arrival":0,"cost":10,"tuples":0}"#,
        )
        .unwrap();
        assert!(decisions(&log).is_empty());
    }
}
