//! Per-query latency waterfalls and SimReport reconciliation.
//!
//! A waterfall is the per-query rollup of reconstructed spans: how much of
//! the query's total response time went to plain queue wait, governor-
//! induced wait, quarantine, and service, plus nearest-rank response and
//! slowdown percentiles. The totals are integer nanoseconds summed from
//! spans that each conserve exactly, so the whole table reconciles against
//! the run's `SimReport` — [`reconcile`] checks that field-for-field,
//! replaying the emission stream through the same `QosAccumulator` the
//! engine used (same Kahan summation, same order ⇒ bit-identical floats).

use hcq_common::Nanos;
use hcq_engine::SimReport;
use hcq_metrics::QosAccumulator;

use crate::event::{InspectEvent, TraceLog};
use crate::span::{Outcome, SpanLog};

/// One query's waterfall rollup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryWaterfall {
    /// The query id.
    pub query: u32,
    /// Emitted spans rolled up.
    pub emitted: u64,
    /// Expired spans attributed to this query.
    pub expired: u64,
    /// Component totals over emitted spans, ns.
    pub wait: u64,
    /// Governor-induced wait total, ns.
    pub governed: u64,
    /// Quarantine total, ns.
    pub quarantine: u64,
    /// Service total, ns.
    pub service: u64,
    /// Response-time percentiles (nearest-rank) over emitted spans, ns.
    pub p50_response: u64,
    /// 95th percentile response, ns.
    pub p95_response: u64,
    /// 99th percentile response, ns.
    pub p99_response: u64,
    /// Maximum response, ns.
    pub max_response: u64,
    /// Slowdown percentiles over emitted spans.
    pub p50_slowdown: f64,
    /// 95th percentile slowdown.
    pub p95_slowdown: f64,
    /// 99th percentile slowdown.
    pub p99_slowdown: f64,
    /// Maximum slowdown.
    pub max_slowdown: f64,
}

impl QueryWaterfall {
    /// Total response time over emitted spans, ns.
    pub fn response(&self) -> u64 {
        self.wait + self.governed + self.quarantine + self.service
    }
}

/// The full waterfall analysis of one trace.
#[derive(Debug, Clone, Default)]
pub struct Waterfalls {
    /// Per-query rollups, sorted by query id.
    pub per_query: Vec<QueryWaterfall>,
    /// All spans reconstructed (emitted + shed + expired).
    pub total_spans: usize,
    /// Spans whose components re-sum to their response exactly.
    pub conserved_spans: usize,
    /// Shed spans (unit-scoped; not part of any query rollup).
    pub shed_spans: usize,
}

impl Waterfalls {
    /// The CI-greppable conservation line.
    pub fn conservation_line(&self) -> String {
        format!(
            "waterfall conservation: {}/{} spans decompose exactly \
             (wait + governed + quarantine + service == response)",
            self.conserved_spans, self.total_spans
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (p in (0, 100]).
fn percentile<T: Copy>(sorted: &[T], p: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Roll reconstructed spans up into per-query waterfalls.
pub fn waterfalls(spans: &SpanLog) -> Waterfalls {
    let mut per_query: Vec<QueryWaterfall> = Vec::new();
    let mut responses: Vec<Vec<u64>> = Vec::new();
    let mut slowdowns: Vec<Vec<f64>> = Vec::new();
    let mut conserved = 0;
    let mut shed_spans = 0;
    let row = |per_query: &mut Vec<QueryWaterfall>,
               responses: &mut Vec<Vec<u64>>,
               slowdowns: &mut Vec<Vec<f64>>,
               q: u32|
     -> usize {
        match per_query.binary_search_by_key(&q, |w| w.query) {
            Ok(i) => i,
            Err(i) => {
                per_query.insert(
                    i,
                    QueryWaterfall {
                        query: q,
                        ..QueryWaterfall::default()
                    },
                );
                responses.insert(i, Vec::new());
                slowdowns.insert(i, Vec::new());
                i
            }
        }
    };
    for s in &spans.spans {
        if s.conserves() {
            conserved += 1;
        }
        match s.outcome {
            Outcome::Emitted => {
                let q = s.query.expect("emitted spans carry a query");
                let i = row(&mut per_query, &mut responses, &mut slowdowns, q);
                let w = &mut per_query[i];
                w.emitted += 1;
                w.wait += s.wait;
                w.governed += s.governed;
                w.quarantine += s.quarantine;
                w.service += s.service;
                responses[i].push(s.response());
                slowdowns[i].push(s.slowdown);
            }
            Outcome::Expired => {
                let q = s.query.expect("expired spans carry a query");
                let i = row(&mut per_query, &mut responses, &mut slowdowns, q);
                per_query[i].expired += 1;
            }
            Outcome::Shed => shed_spans += 1,
        }
    }
    for (i, w) in per_query.iter_mut().enumerate() {
        responses[i].sort_unstable();
        slowdowns[i].sort_unstable_by(f64::total_cmp);
        w.p50_response = percentile(&responses[i], 50.0).unwrap_or(0);
        w.p95_response = percentile(&responses[i], 95.0).unwrap_or(0);
        w.p99_response = percentile(&responses[i], 99.0).unwrap_or(0);
        w.max_response = responses[i].last().copied().unwrap_or(0);
        w.p50_slowdown = percentile(&slowdowns[i], 50.0).unwrap_or(0.0);
        w.p95_slowdown = percentile(&slowdowns[i], 95.0).unwrap_or(0.0);
        w.p99_slowdown = percentile(&slowdowns[i], 99.0).unwrap_or(0.0);
        w.max_slowdown = slowdowns[i].last().copied().unwrap_or(0.0);
    }
    Waterfalls {
        per_query,
        total_spans: spans.spans.len(),
        conserved_spans: conserved,
        shed_spans,
    }
}

/// Render the waterfall table as fixed-width text (byte-deterministic).
pub fn render(w: &Waterfalls) -> String {
    let mut out = String::new();
    out.push_str(
        "query  emitted  expired  p50_ms    p95_ms    p99_ms    \
         wait%   gov%    quar%   serv%   p99_slowdown\n",
    );
    for q in &w.per_query {
        let total = q.response().max(1) as f64;
        let pct = |v: u64| 100.0 * v as f64 / total;
        out.push_str(&format!(
            "{:<6} {:<8} {:<8} {:<9.3} {:<9.3} {:<9.3} {:<7.1} {:<7.1} {:<7.1} {:<7.1} {:.2}\n",
            q.query,
            q.emitted,
            q.expired,
            q.p50_response as f64 * 1e-6,
            q.p95_response as f64 * 1e-6,
            q.p99_response as f64 * 1e-6,
            pct(q.wait),
            pct(q.governed),
            pct(q.quarantine),
            pct(q.service),
            q.p99_slowdown,
        ));
    }
    out.push_str(&w.conservation_line());
    out.push('\n');
    out
}

/// One reconciliation check: a field name, the trace-derived value, the
/// report's value, and whether they matched exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// SimReport field name.
    pub field: String,
    /// Value recomputed from the trace.
    pub from_trace: String,
    /// Value in the SimReport.
    pub from_report: String,
    /// Exact match?
    pub ok: bool,
}

/// The result of reconciling a trace against its run's `SimReport`.
#[derive(Debug, Clone, Default)]
pub struct Reconciliation {
    /// Every field compared.
    pub checks: Vec<Check>,
}

impl Reconciliation {
    /// True when every field matched exactly.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The fields that failed.
    pub fn failures(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }
}

/// Recompute `SimReport` counters from the trace and compare field-for-field.
///
/// Covers every counter the trace can reproduce: event counts, busy and
/// overhead time, and the full QoS summary (replayed through the engine's
/// own `QosAccumulator`, so float aggregates must match to the bit).
/// Counters with no trace-side signal (arrivals, dropped-by-filter,
/// avg_pending) are out of scope.
pub fn reconcile(log: &TraceLog, report: &SimReport) -> Reconciliation {
    let mut r = Reconciliation::default();
    let mut push = |field: &str, trace: String, rep: String| {
        let ok = trace == rep;
        r.checks.push(Check {
            field: field.to_string(),
            from_trace: trace,
            from_report: rep,
            ok,
        });
    };

    let mut emits = 0u64;
    let mut sheds = 0u64;
    let mut expires = 0u64;
    let mut failures = 0u64;
    let mut sched_points = 0u64;
    let mut governor = 0u64;
    let mut switches = 0u64;
    let mut busy = 0u64;
    let mut overhead = 0u64;
    let mut candidates = 0u64;
    let mut evals = 0u64;
    let mut comparisons = 0u64;
    let mut cluster_ops = 0u64;
    let mut heap_ops = 0u64;
    let mut qos = QosAccumulator::new();
    for ev in &log.events {
        match ev {
            InspectEvent::Emit {
                at,
                arrival,
                slowdown,
                ..
            } => {
                emits += 1;
                qos.record(Nanos(at.saturating_sub(*arrival)), *slowdown);
            }
            InspectEvent::Shed { .. } => sheds += 1,
            InspectEvent::Expire { .. } => expires += 1,
            InspectEvent::OpFailure { cost, .. } => {
                failures += 1;
                busy += cost;
            }
            InspectEvent::UnitRun { cost, .. } => busy += cost,
            InspectEvent::SchedPoint {
                charged,
                candidates: c,
                evals: e,
                comparisons: cmp,
                cluster_ops: cl,
                heap_ops: h,
                ..
            } => {
                sched_points += 1;
                overhead += charged;
                candidates += c;
                evals += e;
                comparisons += cmp;
                cluster_ops += cl;
                heap_ops += h;
            }
            InspectEvent::Governor { .. } => governor += 1,
            InspectEvent::PolicySwitch { .. } => switches += 1,
            InspectEvent::Fault { .. } => {}
        }
    }

    push("emitted", emits.to_string(), report.emitted.to_string());
    push("shed", sheds.to_string(), report.shed.to_string());
    push("expired", expires.to_string(), report.expired.to_string());
    push(
        "op_failures",
        failures.to_string(),
        report.op_failures.to_string(),
    );
    push(
        "sched_points",
        sched_points.to_string(),
        report.sched_points.to_string(),
    );
    push(
        "governor_transitions",
        governor.to_string(),
        report.governor_transitions.to_string(),
    );
    push(
        "policy_switches",
        switches.to_string(),
        report.policy_switches.to_string(),
    );
    push(
        "busy_time",
        busy.to_string(),
        report.busy_time.as_nanos().to_string(),
    );
    push(
        "overhead_time",
        overhead.to_string(),
        report.overhead_time.as_nanos().to_string(),
    );
    push(
        "overhead.candidates_scanned",
        candidates.to_string(),
        report.overhead.candidates_scanned.to_string(),
    );
    push(
        "overhead.priority_evals",
        evals.to_string(),
        report.overhead.priority_evals.to_string(),
    );
    push(
        "overhead.comparisons",
        comparisons.to_string(),
        report.overhead.comparisons.to_string(),
    );
    push(
        "overhead.cluster_ops",
        cluster_ops.to_string(),
        report.overhead.cluster_ops.to_string(),
    );
    push(
        "overhead.heap_ops",
        heap_ops.to_string(),
        report.overhead.heap_ops.to_string(),
    );

    // QoS: same accumulator, same record order ⇒ floats must be identical
    // to the bit. Compare the exact shortest-roundtrip rendering.
    let s = qos.summary();
    let f = |x: f64| format!("{x}");
    push(
        "qos.count",
        s.count.to_string(),
        report.qos.count.to_string(),
    );
    push(
        "qos.avg_response_ms",
        f(s.avg_response_ms),
        f(report.qos.avg_response_ms),
    );
    push(
        "qos.max_response_ms",
        f(s.max_response_ms),
        f(report.qos.max_response_ms),
    );
    push(
        "qos.avg_slowdown",
        f(s.avg_slowdown),
        f(report.qos.avg_slowdown),
    );
    push(
        "qos.max_slowdown",
        f(s.max_slowdown),
        f(report.qos.max_slowdown),
    );
    push(
        "qos.l2_slowdown",
        f(s.l2_slowdown),
        f(report.qos.l2_slowdown),
    );
    r
}

/// Render a reconciliation as fixed-width text.
pub fn render_reconciliation(r: &Reconciliation) -> String {
    let mut out = String::new();
    out.push_str("field                        trace                 report                ok\n");
    for c in &r.checks {
        out.push_str(&format!(
            "{:<28} {:<21} {:<21} {}\n",
            c.field,
            c.from_trace,
            c.from_report,
            if c.ok { "yes" } else { "NO" }
        ));
    }
    out.push_str(&format!(
        "reconciliation: {}/{} fields match exactly\n",
        r.checks.iter().filter(|c| c.ok).count(),
        r.checks.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_stream;
    use crate::span::reconstruct;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), Some(50));
        assert_eq!(percentile(&v, 95.0), Some(95));
        assert_eq!(percentile(&v, 99.0), Some(99));
        assert_eq!(percentile(&v, 100.0), Some(100));
        assert_eq!(percentile(&[7u64], 50.0), Some(7));
        assert_eq!(percentile::<u64>(&[], 50.0), None);
    }

    #[test]
    fn rollup_sums_components_per_query() {
        let l = parse_stream(
            &[
                r#"{"type":"unit_run","at":10,"unit":0,"tuple":1,"arrival":0,"cost":5,"tuples":1}"#,
                r#"{"type":"emit","at":15,"unit":0,"query":2,"tuple":1,"lineage":1,"arrival":0,"slowdown":1.5}"#,
                r#"{"type":"unit_run","at":20,"unit":0,"tuple":2,"arrival":5,"cost":5,"tuples":1}"#,
                r#"{"type":"emit","at":25,"unit":0,"query":2,"tuple":2,"lineage":2,"arrival":5,"slowdown":2.0}"#,
                r#"{"type":"expire","at":30,"unit":1,"query":7,"tuple":3,"arrival":4,"late_by":6}"#,
            ]
            .join("\n"),
        )
        .unwrap();
        let w = waterfalls(&reconstruct(&l).unwrap());
        assert_eq!(w.total_spans, 3);
        assert_eq!(w.conserved_spans, 3);
        assert_eq!(w.per_query.len(), 2);
        let q2 = &w.per_query[0];
        assert_eq!((q2.query, q2.emitted), (2, 2));
        // waits 10 and 15, services 5 and 5.
        assert_eq!((q2.wait, q2.service), (25, 10));
        assert_eq!(q2.response(), 35);
        assert_eq!(q2.max_response, 20);
        assert_eq!(q2.max_slowdown, 2.0);
        let q7 = &w.per_query[1];
        assert_eq!((q7.query, q7.emitted, q7.expired), (7, 0, 1));
        assert!(w
            .conservation_line()
            .contains("3/3 spans decompose exactly"));
        let text = render(&w);
        assert!(text.contains("waterfall conservation: 3/3"));
    }
}
