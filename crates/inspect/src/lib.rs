//! # hcq-inspect — offline trace analysis
//!
//! Consumes the JSONL scheduling traces the engine's [`hcq_engine::JsonlTrace`]
//! sink writes (and tolerates interleaved `repro monitor` telemetry lines) and
//! turns them into answers:
//!
//! - [`waterfall`] — per-query latency waterfalls: every emission's response
//!   time decomposed into queue-wait, governor-induced wait, quarantine
//!   (failed-attempt retry delay), and service, rolled up to per-query
//!   p50/p95/p99 tables. [`waterfall::reconcile`] replays the trace against a
//!   run's [`hcq_engine::SimReport`] and proves the two agree field for field.
//! - [`starve`] — starvation diagnosis: longest-waiting head tuples that sat
//!   through scheduling decisions, and per-unit selection-share vs
//!   demand-share skew.
//! - [`diff`] — run-vs-run decision diffing at scheduling-point granularity:
//!   the first decision where two runs chose different units, plus per-query
//!   QoS deltas.
//! - [`perfetto`] — Chrome trace-event / Perfetto export with one track per
//!   query and one for the scheduler.
//!
//! Everything is pure and deterministic: parsing ([`json`], [`event`]) keeps
//! number text verbatim (composite tuple ids exceed 2^53 and must not pass
//! through f64), span reconstruction ([`span`]) is a single forward pass, and
//! all reports render as fixed-width text with stable ordering, so inspect
//! output is byte-identical for byte-identical traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod event;
pub mod json;
pub mod perfetto;
pub mod span;
pub mod starve;
pub mod waterfall;

pub use diff::{diff, DiffReport, Divergence};
pub use event::{parse_stream, InspectEvent, TraceLog};
pub use json::{parse as parse_json, JsonValue};
pub use perfetto::PerfettoStats;
pub use span::{reconstruct, Outcome, Span, SpanLog};
pub use starve::{starvation, Starvation};
pub use waterfall::{reconcile, waterfalls, Reconciliation, Waterfalls};
