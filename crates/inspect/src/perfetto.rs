//! Perfetto / Chrome trace-event export.
//!
//! Renders a parsed trace as the JSON object form of the Trace Event
//! Format (`{"displayTimeUnit":"ns","traceEvents":[...]}`), which
//! ui.perfetto.dev and chrome://tracing open directly. Layout:
//!
//! - **tid 0, "scheduler"**: one complete (`ph:"X"`) slice per scheduling
//!   point with `dur` = charged overhead, plus instants for sheds, failed
//!   attempts, governor transitions, policy switches, and faults.
//! - **tid 1+q, "query q"**: one complete slice per emitted span covering
//!   the winning run (`run_start → emit`, never overlapping — the simulator
//!   is single-threaded), an async `b`/`e` pair covering the whole
//!   `arrival → emit` response keyed by lineage id, and instants for
//!   expiries.
//!
//! Timestamps are microseconds (the format's fixed unit) with the
//! nanosecond remainder as three fixed decimals, so virtual-time precision
//! survives the unit change. [`validate`] re-parses rendered output with
//! this crate's own JSON parser and checks the schema — the CI smoke job's
//! "serde round-trip".

use std::fmt::Write as _;

use crate::event::{InspectEvent, TraceLog};
use crate::json::{self, JsonValue};
use crate::span::{reconstruct, Outcome};

/// Virtual ns → trace-event µs with exact ns remainder.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a parsed trace as Perfetto-compatible trace-event JSON.
pub fn render(log: &TraceLog) -> Result<String, String> {
    let spans = reconstruct(log)?;
    let mut queries: Vec<u32> = log
        .events
        .iter()
        .filter_map(|ev| match ev {
            InspectEvent::Emit { query, .. } | InspectEvent::Expire { query, .. } => Some(*query),
            _ => None,
        })
        .collect();
    queries.sort_unstable();
    queries.dedup();

    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"hcq-sim\"}}"
            .to_string(),
    );
    events.push(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"scheduler\"}}"
            .to_string(),
    );
    for q in &queries {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"query {q}\"}}}}",
            q + 1
        ));
    }

    for ev in &log.events {
        match ev {
            InspectEvent::SchedPoint {
                at, evals, charged, ..
            } => events.push(format!(
                "{{\"name\":\"sched\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\
                 \"dur\":{},\"args\":{{\"evals\":{evals}}}}}",
                us(*at),
                us(*charged),
            )),
            InspectEvent::Shed {
                at, unit, tuple, ..
            } => events.push(format!(
                "{{\"name\":\"shed\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\
                 \"ts\":{},\"args\":{{\"unit\":{unit},\"tuple\":{tuple}}}}}",
                us(*at),
            )),
            InspectEvent::OpFailure {
                at,
                unit,
                tuple,
                attempt,
                ..
            } => events.push(format!(
                "{{\"name\":\"op_failure\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\
                 \"ts\":{},\"args\":{{\"unit\":{unit},\"tuple\":{tuple},\"attempt\":{attempt}}}}}",
                us(*at),
            )),
            InspectEvent::Governor { at, from, to, .. } => events.push(format!(
                "{{\"name\":\"governor\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\
                 \"ts\":{},\"args\":{{\"from\":\"{}\",\"to\":\"{}\"}}}}",
                us(*at),
                escape(from),
                escape(to),
            )),
            InspectEvent::PolicySwitch { at, from, to, .. } => events.push(format!(
                "{{\"name\":\"policy_switch\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\
                 \"ts\":{},\"args\":{{\"from\":\"{}\",\"to\":\"{}\"}}}}",
                us(*at),
                escape(from),
                escape(to),
            )),
            InspectEvent::Fault {
                at,
                kind,
                magnitude,
            } => events.push(format!(
                "{{\"name\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\
                 \"ts\":{},\"args\":{{\"kind\":\"{}\",\"magnitude\":{magnitude}}}}}",
                us(*at),
                escape(kind),
            )),
            InspectEvent::Expire {
                at,
                query,
                tuple,
                late_by,
                ..
            } => events.push(format!(
                "{{\"name\":\"expire\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"args\":{{\"tuple\":{tuple},\"late_by\":{late_by}}}}}",
                query + 1,
                us(*at),
            )),
            _ => {}
        }
    }

    for s in &spans.spans {
        if s.outcome != Outcome::Emitted {
            continue;
        }
        let q = s.query.expect("emitted spans carry a query");
        let tid = q + 1;
        // The whole response as an async pair keyed by lineage...
        events.push(format!(
            "{{\"name\":\"tuple\",\"cat\":\"lineage\",\"ph\":\"b\",\"id\":\"{:x}\",\
             \"pid\":1,\"tid\":{tid},\"ts\":{},\"args\":{{\"lineage\":{},\
             \"wait\":{},\"governed\":{},\"quarantine\":{}}}}}",
            s.lineage,
            us(s.arrival),
            s.lineage,
            s.wait,
            s.governed,
            s.quarantine,
        ));
        events.push(format!(
            "{{\"name\":\"tuple\",\"cat\":\"lineage\",\"ph\":\"e\",\"id\":\"{:x}\",\
             \"pid\":1,\"tid\":{tid},\"ts\":{}}}",
            s.lineage,
            us(s.end),
        ));
        // ...and the winning run as a complete slice.
        events.push(format!(
            "{{\"name\":\"service\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
             \"dur\":{},\"args\":{{\"tuple\":{},\"slowdown\":{}}}}}",
            us(s.run_start),
            us(s.end - s.run_start),
            s.tuple,
            s.slowdown,
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    Ok(out)
}

/// Schema statistics from a validated export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfettoStats {
    /// Total trace events.
    pub events: usize,
    /// Named tracks (thread_name metadata records).
    pub tracks: usize,
    /// Complete (`ph:"X"`) slices.
    pub complete: usize,
    /// Matched async begin/end pairs.
    pub async_pairs: usize,
    /// Instant events.
    pub instants: usize,
}

/// Parse rendered trace-event JSON back and check it against the format's
/// schema: required top-level shape, required fields per phase type, and
/// balanced async begin/end pairs per (category, id).
pub fn validate(text: &str) -> Result<PerfettoStats, String> {
    let v = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if v.get("displayTimeUnit").and_then(JsonValue::as_str) != Some("ns") {
        return Err("missing displayTimeUnit:\"ns\"".to_string());
    }
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = PerfettoStats {
        events: events.len(),
        ..PerfettoStats::default()
    };
    let mut open_async: Vec<(String, String)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing ph"))?;
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing name"))?;
        if e.get("pid").and_then(JsonValue::as_u64).is_none() {
            return Err(ctx("missing integer pid"));
        }
        let ts_ok = e.get("ts").and_then(JsonValue::as_f64).is_some();
        match ph {
            "M" => {
                if !matches!(name, "process_name" | "thread_name") {
                    return Err(ctx("metadata name must be process_name/thread_name"));
                }
                if e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(JsonValue::as_str)
                    .is_none()
                {
                    return Err(ctx("metadata needs args.name"));
                }
                if name == "thread_name" {
                    stats.tracks += 1;
                }
            }
            "X" => {
                if !ts_ok || e.get("dur").and_then(JsonValue::as_f64).is_none() {
                    return Err(ctx("complete event needs numeric ts and dur"));
                }
                stats.complete += 1;
            }
            "i" => {
                if !ts_ok {
                    return Err(ctx("instant event needs numeric ts"));
                }
                stats.instants += 1;
            }
            "b" | "e" => {
                if !ts_ok {
                    return Err(ctx("async event needs numeric ts"));
                }
                let id = e
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ctx("async event needs string id"))?
                    .to_string();
                let cat = e
                    .get("cat")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ctx("async event needs cat"))?
                    .to_string();
                if ph == "b" {
                    open_async.push((cat, id));
                } else {
                    let pos = open_async
                        .iter()
                        .rposition(|(c, d)| *c == cat && *d == id)
                        .ok_or_else(|| ctx("async end with no open begin"))?;
                    open_async.remove(pos);
                    stats.async_pairs += 1;
                }
            }
            other => return Err(ctx(&format!("unsupported ph \"{other}\""))),
        }
    }
    if !open_async.is_empty() {
        return Err(format!("{} async begin(s) never closed", open_async.len()));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_stream;

    fn sample_log() -> TraceLog {
        parse_stream(
            &[
                r#"{"type":"fault","at":0,"kind":"cost_miscalibration","magnitude":0.4}"#,
                r#"{"type":"sched_point","at":5,"candidates":3,"evals":3,"comparisons":3,"cluster_ops":1,"heap_ops":2,"charged":6}"#,
                r#"{"type":"unit_run","at":11,"unit":2,"tuple":7,"arrival":4,"cost":1000,"tuples":1}"#,
                r#"{"type":"emit","at":1011,"unit":2,"query":2,"tuple":7,"lineage":7,"arrival":4,"slowdown":1.5}"#,
                r#"{"type":"shed","at":1011,"unit":0,"tuple":9,"lineage":9,"arrival":6}"#,
                r#"{"type":"expire","at":1500,"unit":1,"query":1,"tuple":8,"arrival":5,"late_by":250}"#,
                r#"{"type":"governor","at":2000,"from":"DropTail","to":"QosShed","pending":40,"share":0.75}"#,
                r#"{"type":"policy_switch","at":2100,"from":"BSD-Logarithmic","to":"LSF","share":0.8}"#,
                r#"{"type":"op_failure","at":2200,"unit":3,"tuple":12,"cost":900,"attempt":0,"retrying":true}"#,
            ]
            .join("\n"),
        )
        .unwrap()
    }

    #[test]
    fn renders_and_validates() {
        let text = render(&sample_log()).unwrap();
        let stats = validate(&text).unwrap();
        // scheduler + query 1 + query 2 tracks.
        assert_eq!(stats.tracks, 3);
        // sched X + service X.
        assert_eq!(stats.complete, 2);
        assert_eq!(stats.async_pairs, 1);
        // shed, expire, governor, policy_switch, op_failure, fault.
        assert_eq!(stats.instants, 6);
    }

    #[test]
    fn microsecond_timestamps_keep_ns_precision() {
        assert_eq!(us(1011), "1.011");
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000_000_007), "1000000.007");
    }

    #[test]
    fn validate_rejects_malformed_exports() {
        assert!(validate("[]").is_err());
        assert!(validate("{\"displayTimeUnit\":\"ns\"}").is_err());
        let no_ph = r#"{"displayTimeUnit":"ns","traceEvents":[{"name":"x"}]}"#;
        assert!(validate(no_ph).is_err());
        let unclosed = r#"{"displayTimeUnit":"ns","traceEvents":[
            {"name":"t","cat":"c","ph":"b","id":"1","pid":1,"tid":0,"ts":0.0}
        ]}"#;
        assert!(validate(unclosed).unwrap_err().contains("never closed"));
    }

    #[test]
    fn empty_trace_renders_a_valid_header() {
        let text = render(&TraceLog::default()).unwrap();
        let stats = validate(&text).unwrap();
        assert_eq!(stats.tracks, 1); // scheduler only
        assert_eq!(stats.complete, 0);
    }
}
