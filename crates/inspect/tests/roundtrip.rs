//! The JSONL contract between engine and inspector: for every `TraceEvent`
//! variant and arbitrary field values, rendering through the engine's
//! [`JsonlTrace`] sink and parsing back through [`hcq_inspect::event`] yields
//! an equal event (`parse(render(event)) == event`, compared field for field
//! via the crate's `PartialEq<TraceEvent>` impl). Integer fields round-trip
//! textually — including composite tuple ids above 2^53, which would corrupt
//! through f64 — and finite floats round-trip exactly because Rust's `{}`
//! formatting is shortest-round-trip.

use hcq_common::Nanos;
use hcq_engine::{JsonlTrace, TraceEvent, TraceSink};
use hcq_inspect::event::{parse_line, Line};
use proptest::prelude::*;

/// Render one event exactly as a trace file line (newline trimmed).
fn render(ev: &TraceEvent) -> String {
    let mut sink = JsonlTrace::new(Vec::new());
    sink.event(ev);
    let bytes = sink.finish().expect("Vec<u8> writes cannot fail");
    String::from_utf8(bytes)
        .expect("trace lines are UTF-8")
        .trim_end()
        .to_string()
}

/// Assert the parse(render(event)) == event law for one event.
fn assert_roundtrip(ev: TraceEvent) -> Result<(), proptest::test_runner::TestCaseError> {
    let line = render(&ev);
    let parsed = parse_line(&line).expect("rendered lines parse");
    match parsed {
        Line::Event(ie) => prop_assert!(
            ie == ev,
            "round-trip mismatch:\n  line:   {line}\n  parsed: {ie:?}\n  event:  {ev:?}"
        ),
        other => prop_assert!(false, "rendered event classified as {other:?}"),
    }
    Ok(())
}

const FAULT_KINDS: [&str; 3] = ["cost_miscalibration", "cost_jitter", "op_failure"];
const MODES: [&str; 3] = ["DropTail", "QosShed", "PriorityShed"];
const POLICIES: [&str; 4] = ["FCFS", "HR", "BSD-Logarithmic", "LSF"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sched_point_roundtrips(
        (at, candidates, evals) in (any::<u64>(), any::<u64>(), any::<u64>()),
        (comparisons, cluster_ops, heap_ops, charged)
            in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        assert_roundtrip(TraceEvent::SchedulingPoint {
            at: Nanos(at),
            candidates_scanned: candidates,
            priority_evals: evals,
            comparisons,
            cluster_ops,
            heap_ops,
            charged: Nanos(charged),
        })?;
    }

    #[test]
    fn unit_run_roundtrips(
        (at, unit, tuple) in (any::<u64>(), any::<u32>(), any::<u64>()),
        (arrival, cost, tuples) in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        assert_roundtrip(TraceEvent::UnitRun {
            at: Nanos(at),
            unit,
            tuple,
            arrival: Nanos(arrival),
            cost: Nanos(cost),
            tuples,
        })?;
    }

    #[test]
    fn emit_roundtrips(
        (at, unit, query) in (any::<u64>(), any::<u32>(), any::<u32>()),
        // Composite ids have the top bit set — well above 2^53, so this
        // exercises the raw-text number path.
        (tuple, lineage, arrival) in (any::<u64>(), any::<u64>(), any::<u64>()),
        slowdown in 1.0f64..=1e9,
    ) {
        assert_roundtrip(TraceEvent::Emit {
            at: Nanos(at),
            unit,
            query,
            tuple: tuple | (1 << 63),
            lineage,
            arrival: Nanos(arrival),
            slowdown,
        })?;
    }

    #[test]
    fn shed_roundtrips(
        (at, unit, tuple, lineage, arrival)
            in (any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        assert_roundtrip(TraceEvent::Shed {
            at: Nanos(at),
            unit,
            tuple,
            lineage,
            arrival: Nanos(arrival),
        })?;
    }

    #[test]
    fn fault_roundtrips(
        at in any::<u64>(),
        kind in 0usize..FAULT_KINDS.len(),
        magnitude in 0.0f64..=1e6,
    ) {
        assert_roundtrip(TraceEvent::Fault {
            at: Nanos(at),
            kind: FAULT_KINDS[kind],
            magnitude,
        })?;
    }

    #[test]
    fn expire_roundtrips(
        (at, unit, query) in (any::<u64>(), any::<u32>(), any::<u32>()),
        (tuple, arrival, late_by) in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        assert_roundtrip(TraceEvent::Expire {
            at: Nanos(at),
            unit,
            query,
            tuple,
            arrival: Nanos(arrival),
            late_by: Nanos(late_by),
        })?;
    }

    #[test]
    fn governor_transition_roundtrips(
        (at, pending) in (any::<u64>(), any::<u64>()),
        (from, to) in (0usize..MODES.len(), 0usize..MODES.len()),
        share in 0.0f64..=1.0,
    ) {
        assert_roundtrip(TraceEvent::GovernorTransition {
            at: Nanos(at),
            from: MODES[from],
            to: MODES[to],
            pending,
            share,
        })?;
    }

    #[test]
    fn policy_switch_roundtrips(
        at in any::<u64>(),
        (from, to) in (0usize..POLICIES.len(), 0usize..POLICIES.len()),
        share in 0.0f64..=1.0,
    ) {
        assert_roundtrip(TraceEvent::PolicySwitch {
            at: Nanos(at),
            from: POLICIES[from],
            to: POLICIES[to],
            share,
        })?;
    }

    #[test]
    fn op_failure_roundtrips(
        (at, unit, tuple) in (any::<u64>(), any::<u32>(), any::<u64>()),
        (cost, attempt, retrying) in (any::<u64>(), any::<u32>(), any::<bool>()),
    ) {
        assert_roundtrip(TraceEvent::OpFailure {
            at: Nanos(at),
            unit,
            tuple,
            cost: Nanos(cost),
            attempt,
            retrying,
        })?;
    }
}
