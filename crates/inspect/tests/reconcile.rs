//! End-to-end reconciliation: run seeded traced simulations, parse the JSONL
//! stream back, and prove the inspector's derived numbers agree with the
//! run's own [`SimReport`] — field for field, not approximately. Every span's
//! waterfall must decompose exactly (wait + governed + quarantine + service
//! == response), and the replayed QoS accumulator must land on bit-identical
//! summary statistics.

use hcq_common::{Nanos, StreamId};
use hcq_core::{ClusterConfig, ClusteredBsdPolicy, PolicyKind};
use hcq_engine::{
    simulate_traced, AdmissionMode, GovernorConfig, JsonlTrace, SimConfig, SimReport,
};
use hcq_inspect::{parse_stream, reconcile, reconstruct, starvation, waterfalls, TraceLog};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::{PoissonSource, TraceReplay};

fn ms(n: u64) -> Nanos {
    Nanos::from_millis(n)
}

/// The golden-trace fixture: four heterogeneous queries, burst arrivals,
/// QoS shedding, overhead charging, cost miscalibration.
fn golden_like() -> (SimReport, TraceLog) {
    let mut plan = GlobalPlan::default();
    for i in 0..4u64 {
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(ms(1 << i), 0.3 + 0.2 * i as f64)
                .project(ms(1))
                .build()
                .unwrap(),
        );
    }
    let mut arrivals = vec![Nanos::ZERO; 5];
    arrivals.extend((0..5).map(|i| ms(40 + 20 * i)));
    let n = arrivals.len() as u64;
    let cfg = SimConfig::new(n)
        .with_seed(17)
        .with_admission(AdmissionMode::QosShed, 2)
        .with_watermark(6)
        .with_overhead(true)
        .with_cost_miscalibration(0.25, 99);
    run(&plan, arrivals_source(arrivals), cfg)
}

/// The full fault surface: op failures (quarantine), per-query deadlines
/// (expiries), and an enabled governor (mode transitions → governed waits,
/// plus policy switches when overload sustains).
fn faulty_governed() -> (SimReport, TraceLog) {
    let mut plan = GlobalPlan::default();
    for i in 0..6u64 {
        let b = QueryBuilder::on(StreamId::new(0))
            .select(ms(1 + i), 0.4 + 0.1 * (i % 4) as f64)
            .project(ms(1));
        let b = if i % 2 == 0 {
            b.with_deadline(ms(30 + 10 * i))
        } else {
            b
        };
        plan.add_query(b.build().unwrap());
    }
    let governor = GovernorConfig {
        enabled: true,
        cadence: ms(25),
        min_dwell: ms(50),
        escalate_pending: 24,
        deescalate_pending: 4,
        escalate_share: 0.4,
        deescalate_share: 0.1,
        capacity: 8,
        watermark: 16,
        ..GovernorConfig::default()
    };
    let cfg = SimConfig::new(400)
        .with_seed(23)
        .with_governor(governor)
        .with_op_failures(0.08, ms(5), 2)
        .with_overhead(true);
    run(&plan, Box::new(PoissonSource::new(ms(4), 7)), cfg)
}

fn arrivals_source(arrivals: Vec<Nanos>) -> Box<dyn hcq_streams::ArrivalSource> {
    Box::new(TraceReplay::from_arrivals(arrivals).unwrap())
}

fn run(
    plan: &GlobalPlan,
    source: Box<dyn hcq_streams::ArrivalSource>,
    cfg: SimConfig,
) -> (SimReport, TraceLog) {
    let (report, sink) = simulate_traced(
        plan,
        &StreamRates::none(),
        vec![source],
        Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(3))),
        cfg,
        JsonlTrace::new(Vec::new()),
    )
    .unwrap();
    let bytes = sink.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let log = parse_stream(&text).unwrap();
    (report, log)
}

fn assert_reconciles(report: &SimReport, log: &TraceLog, label: &str) {
    // Every reconstructed span decomposes exactly.
    let spans = reconstruct(log).unwrap();
    let w = waterfalls(&spans);
    assert_eq!(
        w.conserved_spans,
        w.total_spans,
        "{label}: {} of {} spans fail conservation",
        w.total_spans - w.conserved_spans,
        w.total_spans,
    );
    assert!(w.total_spans > 0, "{label}: fixture produced no spans");

    // Field-for-field agreement with the run's own report.
    let rec = reconcile(log, report);
    assert!(
        rec.all_ok(),
        "{label}: trace does not reconcile with SimReport:\n{}",
        rec.failures()
            .into_iter()
            .map(|c| format!(
                "  {}: trace={} report={}\n",
                c.field, c.from_trace, c.from_report
            ))
            .collect::<String>(),
    );
}

#[test]
fn golden_fixture_reconciles_field_for_field() {
    let (report, log) = golden_like();
    assert!(report.shed > 0, "fixture must shed");
    assert!(report.emitted > 0, "fixture must emit");
    assert_reconciles(&report, &log, "golden-like");
}

#[test]
fn faulty_governed_fixture_reconciles_field_for_field() {
    let (report, log) = faulty_governed();
    assert!(report.op_failures > 0, "fixture must fail operators");
    assert!(report.expired > 0, "fixture must expire tuples");
    assert!(
        report.governor_transitions > 0,
        "fixture must exercise the governor"
    );
    assert_reconciles(&report, &log, "faulty-governed");
}

#[test]
fn every_policy_reconciles_on_the_golden_workload() {
    // The decomposition must not depend on which policy made the decisions.
    for kind in [
        PolicyKind::Fcfs,
        PolicyKind::Hr,
        PolicyKind::Hnr,
        PolicyKind::Lsf,
        PolicyKind::Bsd,
    ] {
        let mut plan = GlobalPlan::default();
        for i in 0..4u64 {
            plan.add_query(
                QueryBuilder::on(StreamId::new(0))
                    .select(ms(1 << i), 0.5)
                    .build()
                    .unwrap(),
            );
        }
        let mut arrivals = vec![Nanos::ZERO; 4];
        arrivals.extend((0..6).map(|i| ms(15 * i)));
        let n = arrivals.len() as u64;
        let (report, sink) = simulate_traced(
            &plan,
            &StreamRates::none(),
            vec![arrivals_source(arrivals)],
            kind.build(),
            SimConfig::new(n)
                .with_seed(5)
                .with_admission(AdmissionMode::QosShed, 3)
                .with_watermark(8),
            JsonlTrace::new(Vec::new()),
        )
        .unwrap();
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let log = parse_stream(&text).unwrap();
        assert_reconciles(&report, &log, &format!("{kind:?}"));
    }
}

#[test]
fn starvation_detector_runs_on_real_traces() {
    // Smoke the detector on a real trace: it must not panic and its shares
    // must sum to 1 over the units it saw.
    let (_, log) = golden_like();
    let s = starvation(&log, None);
    assert!(!s.units.is_empty());
    let sel: f64 = s.units.iter().map(|u| u.selection_share).sum();
    let dem: f64 = s.units.iter().map(|u| u.demand_share).sum();
    assert!((sel - 1.0).abs() < 1e-9, "selection shares sum to {sel}");
    assert!((dem - 1.0).abs() < 1e-9, "demand shares sum to {dem}");
}
