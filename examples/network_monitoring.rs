//! Network-monitoring workload at paper scale (scaled down by default):
//! hundreds of select–join–project queries over one bursty packet stream,
//! built with the §8 workload generator and calibrated to a target
//! utilization, swept over the full policy roster.
//!
//! Run with:
//! ```text
//! cargo run --release --example network_monitoring [utilization]
//! ```

use hcq::common::Nanos;
use hcq::core::PolicyKind;
use hcq::engine::{simulate, SimConfig};
use hcq::streams::OnOffSource;
use hcq::workload::{single_stream, SingleStreamConfig};

fn main() {
    let utilization: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.9);
    let mean_gap = Nanos::from_millis(10);
    let w = single_stream(&SingleStreamConfig {
        queries: 120,
        cost_classes: 5,
        utilization,
        mean_gap,
        seed: 2024,
    })
    .expect("valid workload");
    println!(
        "{} queries calibrated to utilization {:.2} (K = {:.1} ns/unit)\n",
        w.plan.len(),
        utilization,
        w.k_ns
    );
    println!("policy   avg_resp_ms  avg_slowdown  max_slowdown      l2_norm   measured_util");
    println!("--------------------------------------------------------------------------------");
    for kind in PolicyKind::ALL {
        let r = simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(OnOffSource::lbl_like(mean_gap, 7))],
            kind.build(),
            SimConfig::new(10_000).with_seed(5),
        )
        .expect("valid configuration");
        println!(
            "{:>6}  {:>11.2}  {:>12.2}  {:>12.0}  {:>11.3e}  {:>14.3}",
            kind.name(),
            r.qos.avg_response_ms,
            r.qos.avg_slowdown,
            r.qos.max_slowdown,
            r.qos.l2_slowdown,
            r.measured_utilization()
        );
    }
    println!();
    println!("Expect: HNR wins average slowdown, HR wins average response time,");
    println!("LSF wins maximum slowdown, and BSD wins the l2 norm — Figures 5-10.");
}
