//! Trace archiving and replay: generate a bursty synthetic trace, archive it
//! in the ITA text format, replay it bit-identically, and rerun the same
//! workload at 2× load via time-scaling — all without touching the workload.
//!
//! This is the workflow for using a *real* packet trace (e.g. the paper's
//! LBL-PKT-4, if you have it): put one fractional-seconds timestamp per line
//! in a file and `TraceReplay::parse` it.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_replay
//! ```

use hcq::common::Nanos;
use hcq::core::PolicyKind;
use hcq::engine::{simulate, SimConfig, SimReport};
use hcq::streams::{
    collect_arrivals, record_trace, ArrivalStats, OnOffSource, TimeScale, TraceReplay,
};
use hcq::workload::{single_stream, SingleStreamConfig};

fn main() {
    let mean_gap = Nanos::from_millis(10);
    // 1. Generate and archive a bursty trace.
    let mut source = OnOffSource::lbl_like(mean_gap, 2024);
    let arrivals = collect_arrivals(&mut source, 8_000);
    let stats = ArrivalStats::from_arrivals(&arrivals);
    println!(
        "trace: {} arrivals over {:.1}s, mean gap {:.2}ms, dispersion(2s) {:.1}",
        stats.count(),
        stats.span().as_secs_f64(),
        stats.mean_gap().as_millis_f64(),
        stats.index_of_dispersion(Nanos::from_secs(2))
    );
    let mut archive = Vec::new();
    record_trace(&mut archive, &arrivals).expect("in-memory write");
    println!("archived {} bytes in ITA text format\n", archive.len());

    // 2. Replay the archive through the §8 workload.
    let w = single_stream(&SingleStreamConfig {
        queries: 80,
        cost_classes: 5,
        utilization: 0.85,
        mean_gap,
        seed: 7,
    })
    .expect("valid workload");
    let run = |source: Box<dyn hcq::streams::ArrivalSource>| -> SimReport {
        simulate(
            &w.plan,
            &w.rates,
            vec![source],
            PolicyKind::Hnr.build(),
            SimConfig::new(8_000).with_seed(9),
        )
        .expect("valid simulation")
    };
    let replayed = run(Box::new(
        TraceReplay::parse(archive.as_slice()).expect("well-formed archive"),
    ));
    println!(
        "replay @ 1x: avg slowdown {:>10.1}, measured util {:.2}",
        replayed.qos.avg_slowdown,
        replayed.measured_utilization()
    );

    // 3. The same trace, time-compressed 2x: double the load, same bursts.
    let doubled = run(Box::new(TimeScale::new(
        TraceReplay::parse(archive.as_slice()).expect("well-formed archive"),
        0.5,
    )));
    println!(
        "replay @ 2x: avg slowdown {:>10.1}, measured util {:.2}",
        doubled.qos.avg_slowdown,
        doubled.measured_utilization()
    );
    println!();
    println!("Same workload, same tuples, same burst shape — only the arrival");
    println!("clock changed. Overload amplifies slowdowns super-linearly.");
}
