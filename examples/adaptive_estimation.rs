//! Online cost/selectivity monitoring (the §10 "dynamic environment" hook):
//! EWMA estimators track a drifting operator, and the derived HNR priorities
//! flip when the workload shifts — without any a-priori knowledge.
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_estimation
//! ```

use hcq::common::Nanos;
use hcq::core::{EwmaEstimator, UnitStatics};

fn main() {
    let us = Nanos::from_micros;
    // Two single-operator queries whose true parameters drift over time.
    // Phase 1: A is cheap+selective, B expensive+productive (A should win
    // under HNR). Phase 2: the data distribution shifts — A's predicate now
    // matches almost everything and slows down; B becomes cheap.
    let mut est_a = EwmaEstimator::new(0.05, us(100), 0.5);
    let mut est_b = EwmaEstimator::new(0.05, us(100), 0.5);

    type Phase = (&'static str, (u64, f64), (u64, f64));
    let phases: [Phase; 2] = [
        ("phase 1 (A cheap/selective)", (80, 0.1), (900, 0.9)),
        ("phase 2 (distribution shift)", (700, 0.95), (120, 0.2)),
    ];

    println!("tick   A:cost_us  A:sel   B:cost_us  B:sel   HNR priority order");
    println!("----------------------------------------------------------------");
    let mut tick = 0u64;
    for (label, (ca, sa), (cb, sb)) in phases {
        for i in 0..400u64 {
            // Simulated measurements with deterministic pseudo-noise.
            let jitter = |base: u64, salt: u64| {
                let n = hcq::common::det::unit_f64(hcq::common::det::mix2(tick, salt));
                Nanos::from_nanos((base as f64 * 1_000.0 * (0.85 + 0.3 * n)) as u64)
            };
            let pass = |p: f64, salt: u64| {
                f64::from(u8::from(hcq::common::det::coin(
                    hcq::common::det::mix2(tick, salt),
                    p,
                )))
            };
            est_a.observe(jitter(ca, 1), pass(sa, 2));
            est_b.observe(jitter(cb, 3), pass(sb, 4));
            tick += 1;
            if i == 399 {
                let stat =
                    |e: &EwmaEstimator| UnitStatics::new(e.selectivity(), e.cost(), e.cost());
                let (pa, pb) = (stat(&est_a).hnr_priority(), stat(&est_b).hnr_priority());
                println!(
                    "{tick:>5}  {:>9.1}  {:>5.2}  {:>10.1}  {:>5.2}   {}  [{label}]",
                    est_a.cost().as_nanos() as f64 / 1_000.0,
                    est_a.selectivity(),
                    est_b.cost().as_nanos() as f64 / 1_000.0,
                    est_b.selectivity(),
                    if pa > pb { "A before B" } else { "B before A" },
                );
            }
        }
    }
    println!();
    println!("The scheduler needs no recompilation: refreshed UnitStatics feed");
    println!("StaticPolicy::set_priority / BsdPolicy::set_phi and the priority");
    println!("order follows the drift.");
}
