//! Multi-stream continuous queries: correlating two sensor feeds with
//! time-based sliding-window joins (§5), scheduled as virtual per-leaf
//! segments with the window-occupancy-aware priorities.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_stream_join
//! ```

use hcq::common::{Nanos, StreamId};
use hcq::core::PolicyKind;
use hcq::engine::{simulate, SimConfig};
use hcq::plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq::streams::{ArrivalSource, PoissonSource};

fn main() {
    let ms = Nanos::from_millis;
    // Correlation queries between a temperature feed (stream 0) and a
    // vibration feed (stream 1): alert when readings within a window match.
    let mut plan = GlobalPlan::default();
    for q in 0..12u64 {
        let window = Nanos::from_secs(1 + q % 5);
        let sel = 0.2 + 0.06 * q as f64;
        let cost = ms(1 << (q % 3));
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(cost, sel)
                .window_join(
                    QueryBuilder::on(StreamId::new(1)).select(cost, sel),
                    cost,
                    0.15,
                    window,
                )
                .project(cost)
                .build()
                .unwrap(),
        );
    }
    let gap = ms(400);
    let rates = StreamRates::none()
        .with(StreamId::new(0), gap)
        .with(StreamId::new(1), gap);

    println!("policy   composites  avg_resp_ms  avg_slowdown      l2_norm");
    println!("--------------------------------------------------------------");
    for kind in [
        PolicyKind::Fcfs,
        PolicyKind::RoundRobin,
        PolicyKind::Hnr,
        PolicyKind::Bsd,
    ] {
        let sources: Vec<Box<dyn ArrivalSource>> = vec![
            Box::new(PoissonSource::new(gap, 41)),
            Box::new(PoissonSource::new(gap, 42)),
        ];
        let r = simulate(&plan, &rates, sources, kind.build(), SimConfig::new(6_000))
            .expect("valid configuration");
        println!(
            "{:>6}  {:>10}  {:>11.2}  {:>12.2}  {:>11.3e}",
            kind.name(),
            r.emitted,
            r.qos.avg_response_ms,
            r.qos.avg_slowdown,
            r.qos.l2_slowdown
        );
    }
    println!();
    println!("Join selectivity often exceeds 1 (each arrival meets many window");
    println!("partners), which is why selectivity-blind policies (FCFS, RR) fall");
    println!("so far behind HNR/BSD here — the paper's Figure 12 observation.");
}
