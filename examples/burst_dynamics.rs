//! Burst dynamics: how slowdown evolves through ON/OFF traffic bursts, per
//! policy, using the engine's per-window QoS time series. The bursty source
//! is where the policies differ most — backlogs build at 5× the mean rate
//! during ON periods and the scheduler decides who suffers.
//!
//! Run with:
//! ```text
//! cargo run --release --example burst_dynamics
//! ```

use hcq::common::Nanos;
use hcq::core::PolicyKind;
use hcq::engine::{simulate, SimConfig};
use hcq::streams::OnOffSource;
use hcq::workload::{single_stream, SingleStreamConfig};

fn main() {
    let mean_gap = Nanos::from_millis(10);
    let w = single_stream(&SingleStreamConfig {
        queries: 80,
        cost_classes: 5,
        utilization: 0.9,
        mean_gap,
        seed: 7,
    })
    .expect("valid workload");

    let window = Nanos::from_secs(5);
    println!("avg slowdown per {window} window (bursty source, util 0.9):\n");
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for kind in [
        PolicyKind::Fcfs,
        PolicyKind::Hnr,
        PolicyKind::Bsd,
        PolicyKind::Lsf,
    ] {
        let r = simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(OnOffSource::lbl_like(mean_gap, 3))],
            kind.build(),
            SimConfig::new(6_000)
                .with_seed(12)
                .with_sample_window(window),
        )
        .expect("valid simulation");
        let series = r.series.expect("sampling enabled");
        let values: Vec<f64> = series
            .series()
            .iter()
            .map(|(_, s)| s.avg_slowdown)
            .collect();
        rows.push((kind.name().to_string(), values));
    }

    let n_windows = rows.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    print!("{:>8}", "t(s)");
    for (name, _) in &rows {
        print!("{name:>12}");
    }
    println!();
    for i in 0..n_windows {
        print!("{:>8}", i as u64 * window.as_nanos() / 1_000_000_000);
        for (_, values) in &rows {
            match values.get(i) {
                Some(v) if *v > 0.0 => print!("{v:>12.0}"),
                _ => print!("{:>12}", "-"),
            }
        }
        println!();
    }
    println!();
    println!("Watch the FCFS column spike during bursts and stay elevated while");
    println!("the slowdown-aware policies drain the backlog in priority order.");
}
