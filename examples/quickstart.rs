//! Quickstart: register a few continuous queries, stream data through them,
//! and compare two scheduling policies on the paper's QoS metrics.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use hcq::common::{Nanos, StreamId};
use hcq::core::PolicyKind;
use hcq::engine::{simulate, SimConfig, SimReport};
use hcq::plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq::streams::PoissonSource;

fn main() {
    // Three continuous queries over one stream, deliberately heterogeneous:
    // a cheap alert, a mid-weight filter chain, a heavy analysis pipeline.
    let ms = Nanos::from_micros; // operator costs in microseconds
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(50), 0.02)
            .build()
            .unwrap(),
    );
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(200), 0.4)
            .stored_join(ms(200), 0.4)
            .build()
            .unwrap(),
    );
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(800), 0.9)
            .stored_join(ms(800), 0.9)
            .project(ms(400))
            .build()
            .unwrap(),
    );

    println!("policy    emitted  avg_resp_ms  avg_slowdown  max_slowdown");
    println!("------------------------------------------------------------");
    for kind in [
        PolicyKind::Fcfs,
        PolicyKind::Hr,
        PolicyKind::Hnr,
        PolicyKind::Bsd,
    ] {
        let r = run(&plan, kind);
        println!(
            "{:>6}  {:>8}  {:>11.3}  {:>12.3}  {:>12.3}",
            kind.name(),
            r.emitted,
            r.qos.avg_response_ms,
            r.qos.avg_slowdown,
            r.qos.max_slowdown
        );
    }
    println!("\nHNR should show the lowest average slowdown; HR the lowest");
    println!("average response time — the paper's headline contrast.");
}

fn run(plan: &GlobalPlan, kind: PolicyKind) -> SimReport {
    simulate(
        plan,
        &StreamRates::none(),
        // ~1.7ms of expected work per 2ms arrival: a loaded but stable DSMS.
        vec![Box::new(PoissonSource::new(Nanos::from_millis(2), 11))],
        kind.build(),
        SimConfig::new(20_000).with_seed(1),
    )
    .expect("valid configuration")
}
