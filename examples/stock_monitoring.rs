//! The paper's introductory scenario: GOOGLE vs ANALYSIS.
//!
//! GOOGLE is a trivial continuous query ("notify me when there is a quote
//! for GOOGLE") — low cost, low selectivity. ANALYSIS performs technical
//! analysis on every tick — high cost, high selectivity. Under a pure
//! output-rate policy (HR) the cheap-but-unproductive GOOGLE query is
//! starved: the few events it does produce wait behind endless ANALYSIS
//! work, and the *slowdown* its user experiences explodes even though the
//! system-wide average response time looks great. HNR repairs exactly this.
//!
//! Run with:
//! ```text
//! cargo run --release --example stock_monitoring
//! ```

use hcq::common::{Nanos, StreamId};
use hcq::core::PolicyKind;
use hcq::engine::{simulate, SimConfig};
use hcq::plan::{GlobalPlan, QueryBuilder, QueryTag, StreamRates};
use hcq::streams::OnOffSource;

fn main() {
    let us = Nanos::from_micros;
    let mut plan = GlobalPlan::default();

    // 20 GOOGLE-style alert queries: one cheap filter, rarely satisfied.
    // Tagged cost class 0 so we can split the metrics afterwards.
    for _ in 0..20 {
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(us(40), 0.02)
                .tag(QueryTag {
                    cost_class: 0,
                    selectivity_bucket: 0,
                })
                .build()
                .unwrap(),
        );
    }
    // 20 ANALYSIS-style pipelines: two heavy operators plus projection,
    // productive on most ticks. Tagged cost class 4.
    for _ in 0..20 {
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(us(600), 0.95)
                .stored_join(us(600), 0.9)
                .project(us(300))
                .tag(QueryTag {
                    cost_class: 4,
                    selectivity_bucket: 9,
                })
                .build()
                .unwrap(),
        );
    }

    // Bursty market data: quiet stretches punctuated by tick storms.
    let gap = Nanos::from_millis(55);

    println!("                    ---- GOOGLE-style ----   ---- ANALYSIS-style ----");
    println!("policy   overall-H    avg H      max H         avg H      max H");
    println!("----------------------------------------------------------------------");
    for kind in [PolicyKind::Hr, PolicyKind::Hnr, PolicyKind::Bsd] {
        let r = simulate(
            &plan,
            &StreamRates::none(),
            vec![Box::new(OnOffSource::lbl_like(gap, 3))],
            kind.build(),
            SimConfig::new(30_000).with_seed(17),
        )
        .expect("valid configuration");
        let google = &r.classes.by_cost_class(0)[0].1;
        let analysis = &r.classes.by_cost_class(4)[0].1;
        println!(
            "{:>6}  {:>9.2}  {:>8.2}  {:>9.2}    {:>9.2}  {:>9.2}",
            kind.name(),
            r.qos.avg_slowdown,
            google.avg_slowdown,
            google.max_slowdown,
            analysis.avg_slowdown,
            analysis.max_slowdown
        );
    }
    println!();
    println!("HR minimizes output-rate-weighted delay, so the GOOGLE class is");
    println!("starved (huge class slowdown). HNR normalizes by ideal processing");
    println!("time and restores proportional service; BSD additionally caps the");
    println!("worst case via the wait term.");
}
