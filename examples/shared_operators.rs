//! Operator sharing (§7): groups of queries sharing a select operator, and
//! the effect of the Max / Sum / PDT priority strategies on the group.
//!
//! Run with:
//! ```text
//! cargo run --release --example shared_operators
//! ```

use hcq::common::Nanos;
use hcq::core::{PolicyKind, SharingStrategy};
use hcq::engine::{simulate, SimConfig};
use hcq::streams::OnOffSource;
use hcq::workload::{shared, SharedConfig};

fn main() {
    let mean_gap = Nanos::from_millis(10);
    let w = shared(&SharedConfig {
        groups: 8,
        group_size: 10,
        cost_classes: 5,
        utilization: 0.9,
        mean_gap,
        seed: 99,
    })
    .expect("valid workload");
    println!(
        "{} queries in {} groups of 10, each group sharing its select operator\n",
        w.plan.len(),
        w.plan.sharing.len()
    );
    println!("strategy   HNR avg_slowdown   BSD l2_norm");
    println!("--------------------------------------------");
    for strat in [
        SharingStrategy::Max,
        SharingStrategy::Sum,
        SharingStrategy::Pdt,
    ] {
        let run = |kind: PolicyKind| {
            simulate(
                &w.plan,
                &w.rates,
                vec![Box::new(OnOffSource::lbl_like(mean_gap, 4))],
                kind.build(),
                SimConfig::new(8_000).with_seed(31).with_sharing(strat),
            )
            .expect("valid configuration")
        };
        let hnr = run(PolicyKind::Hnr);
        let bsd = run(PolicyKind::Bsd);
        println!(
            "{:>8}  {:>16.2}  {:>12.3e}",
            strat.name(),
            hnr.qos.avg_slowdown,
            bsd.qos.l2_slowdown
        );
    }
    println!();
    println!("Max underestimates a productive group; Sum lets weak segments drag");
    println!("strong ones down; the Priority-Defining Tree keeps exactly the");
    println!("prefix of segments that maximizes the aggregate priority (Table 2).");
}
