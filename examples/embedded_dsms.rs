//! The embeddable online DSMS (`hcq-aqsios`): register real continuous
//! queries over integer records, push live data, and let HNR schedule.
//!
//! The scenario: a payments stream `(amount_cents, merchant_id, region)`
//! feeding three monitoring queries of very different weight — exactly the
//! heterogeneity the paper's slowdown metric is designed for.
//!
//! Run with:
//! ```text
//! cargo run --release --example embedded_dsms
//! ```

use hcq::aqsios::{
    Cmp, Dsms, DsmsConfig, ManualClock, Predicate, Record, RtJoin, RtOp, RtPlan, RuntimePolicy,
};
use hcq::common::{det, Nanos, StreamId};

const PAYMENTS: StreamId = StreamId(0);
const CHARGEBACKS: StreamId = StreamId(1);

fn main() {
    // A manual clock makes the demo deterministic; swap for the default
    // SystemClock in live deployments.
    let clock = ManualClock::new();
    let mut dsms = Dsms::new(
        DsmsConfig::new(RuntimePolicy::Hnr)
            .with_clock(Box::new(clock.clone()))
            .with_auto_refresh(64),
    )
    .expect("valid config");

    // Q0: large payments (rare, must be cheap to notice).
    let q_large = dsms
        .register(RtPlan::single(
            PAYMENTS,
            vec![RtOp::select(
                Predicate::new(0, Cmp::Ge, 500_000),
                Nanos::from_micros(5),
                0.02,
            )],
        ))
        .unwrap();
    // Q1: region-44 activity feed, projected down to (amount, merchant).
    let q_region = dsms
        .register(RtPlan::single(
            PAYMENTS,
            vec![
                RtOp::select(Predicate::new(2, Cmp::Eq, 44), Nanos::from_micros(20), 0.25),
                RtOp::project(vec![0, 1], Nanos::from_micros(5)),
            ],
        ))
        .unwrap();
    // Q2: payments joined with chargebacks on merchant within 2 s.
    let q_fraud = dsms
        .register(RtPlan::Join {
            left_stream: PAYMENTS,
            right_stream: CHARGEBACKS,
            left_ops: vec![],
            right_ops: vec![],
            join: RtJoin::new(1, 0, Nanos::from_secs(2))
                .with_est_cost(Nanos::from_micros(40))
                .with_est_selectivity(0.5),
            common_ops: vec![RtOp::select(
                Predicate::new(0, Cmp::Ge, 10_000),
                Nanos::from_micros(10),
                0.6,
            )],
        })
        .unwrap();

    // Drive 5,000 synthetic payments (deterministic pseudo-random fields)
    // and occasional chargebacks.
    let mut emissions = [0u64; 3];
    for i in 0..5_000u64 {
        let h = det::splitmix64(i);
        let amount = (det::unit_range(h, 1, 1_000_000)) as i64;
        let merchant = (h % 50) as i64;
        let region = (det::splitmix64(h) % 60) as i64;
        dsms.push(PAYMENTS, Record::new(vec![amount, merchant, region]));
        if i % 40 == 0 {
            dsms.push(CHARGEBACKS, Record::new(vec![merchant, 1]));
        }
        clock.advance(Nanos::from_micros(200));
        for e in dsms.run_until_idle() {
            emissions[e.query.index()] += 1;
        }
    }

    let stats = dsms.stats();
    println!(
        "pushed {} records; {} emissions, {} drops, {} scheduling decisions",
        stats.pushed, stats.emitted, stats.dropped, stats.decisions
    );
    println!();
    println!("query                      emissions");
    println!("--------------------------------------");
    println!("{q_large}  large-payment alerts   {:>8}", emissions[0]);
    println!("{q_region}  region-44 feed         {:>8}", emissions[1]);
    println!("{q_fraud}  chargeback correlation {:>8}", emissions[2]);
    println!();
    println!(
        "QoS: avg response {:.3} ms, avg slowdown {:.2}, max slowdown {:.2}",
        stats.qos.avg_response_ms, stats.qos.avg_slowdown, stats.qos.max_slowdown
    );
    println!();
    println!("Priorities were refreshed from online EWMA monitors every 64");
    println!("decisions — the runtime learned the real selectivities (2%, 25%,");
    println!("join fan-out) without being told.");
}
