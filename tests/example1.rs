//! Cross-crate reproduction of the paper's worked Example 1 (§3.4, Table 1)
//! through the umbrella crate's public API.

use hcq::common::{det, Nanos, StreamId};
use hcq::core::PolicyKind;
use hcq::engine::{simulate, SimConfig};
use hcq::plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq::streams::TraceReplay;

fn example1_seed() -> u64 {
    let key_of = |seed: u64, id: u64| det::unit_range(det::splitmix64(det::mix2(seed, id)), 1, 100);
    (0..10_000u64)
        .find(|&s| key_of(s, 0) > 33 && key_of(s, 1) <= 33 && key_of(s, 2) > 33)
        .expect("suitable seed exists")
}

fn run(kind: PolicyKind) -> hcq::engine::SimReport {
    let ms = Nanos::from_millis;
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(5), 1.0)
            .build()
            .unwrap(),
    );
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(2), 0.33)
            .build()
            .unwrap(),
    );
    simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(
            TraceReplay::from_arrivals(vec![Nanos::ZERO; 3]).unwrap(),
        )],
        kind.build(),
        SimConfig::new(3).with_seed(example1_seed()),
    )
    .unwrap()
}

#[test]
fn table1_exact() {
    let hr = run(PolicyKind::Hr);
    assert!((hr.qos.avg_response_ms - 12.25).abs() < 1e-9);
    assert!((hr.qos.avg_slowdown - 3.875).abs() < 1e-9);

    let hnr = run(PolicyKind::Hnr);
    assert!((hnr.qos.avg_response_ms - 13.0).abs() < 1e-9);
    assert!((hnr.qos.avg_slowdown - 2.9).abs() < 1e-9);

    // The structural claim behind the table: HR wins response time, HNR
    // wins slowdown.
    assert!(hr.qos.avg_response_ms < hnr.qos.avg_response_ms);
    assert!(hnr.qos.avg_slowdown < hr.qos.avg_slowdown);
}
