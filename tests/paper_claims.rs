//! Qualitative claims of §9 verified end-to-end at test scale: each test
//! asserts an *ordering* the paper reports (who wins which metric), not
//! absolute values.

use hcq::common::Nanos;
use hcq::core::{PolicyKind, SharingStrategy};
use hcq::engine::{simulate, SimConfig, SimReport};
use hcq::streams::{ArrivalSource, OnOffSource, PoissonSource};
use hcq::workload::{
    multi_stream, shared, single_stream, MultiStreamConfig, SharedConfig, SingleStreamConfig,
};

const QUERIES: usize = 40;
const ARRIVALS: u64 = 1_200;
const GAP_MS: u64 = 10;

fn run(kind: PolicyKind, utilization: f64) -> SimReport {
    let mean_gap = Nanos::from_millis(GAP_MS);
    let w = single_stream(&SingleStreamConfig {
        queries: QUERIES,
        cost_classes: 5,
        utilization,
        mean_gap,
        seed: 77,
    })
    .unwrap();
    simulate(
        &w.plan,
        &w.rates,
        vec![Box::new(OnOffSource::lbl_like(mean_gap, 13))],
        kind.build(),
        SimConfig::new(ARRIVALS).with_seed(21),
    )
    .unwrap()
}

/// Figure 5: average slowdown ordering HNR < HR < {RR, FCFS} at high load.
#[test]
fn fig5_ordering_avg_slowdown() {
    let hnr = run(PolicyKind::Hnr, 0.9).qos.avg_slowdown;
    let hr = run(PolicyKind::Hr, 0.9).qos.avg_slowdown;
    let srpt = run(PolicyKind::Srpt, 0.9).qos.avg_slowdown;
    let rr = run(PolicyKind::RoundRobin, 0.9).qos.avg_slowdown;
    let fcfs = run(PolicyKind::Fcfs, 0.9).qos.avg_slowdown;
    assert!(hnr < hr, "HNR {hnr} < HR {hr}");
    assert!(hnr < srpt, "HNR {hnr} < SRPT {srpt}");
    assert!(hr < rr, "HR {hr} < RR {rr}");
    assert!(hr < fcfs, "HR {hr} < FCFS {fcfs}");
}

/// Figure 6: HR's average response time is at least as good as HNR's, and
/// the gap is small (paper: 4–7%).
#[test]
fn fig6_hr_wins_response_time_narrowly() {
    let hnr = run(PolicyKind::Hnr, 0.9).qos.avg_response_ms;
    let hr = run(PolicyKind::Hr, 0.9).qos.avg_response_ms;
    assert!(hr <= hnr * 1.001, "HR {hr} vs HNR {hnr}");
    assert!(hnr < hr * 1.5, "HNR within 50% of HR ({hnr} vs {hr})");
}

/// Figures 7–8: maximum slowdown ordering LSF < BSD < HNR under load.
#[test]
fn fig7_fig8_max_slowdown_orderings() {
    let lsf = run(PolicyKind::Lsf, 0.95).qos.max_slowdown;
    let bsd = run(PolicyKind::Bsd, 0.95).qos.max_slowdown;
    let hnr = run(PolicyKind::Hnr, 0.95).qos.max_slowdown;
    assert!(lsf < hnr, "LSF {lsf} < HNR {hnr}");
    assert!(bsd < hnr, "BSD {bsd} < HNR {hnr}");
}

/// Figure 9: average slowdown ordering HNR < BSD < LSF.
#[test]
fn fig9_avg_slowdown_ordering() {
    let lsf = run(PolicyKind::Lsf, 0.95).qos.avg_slowdown;
    let bsd = run(PolicyKind::Bsd, 0.95).qos.avg_slowdown;
    let hnr = run(PolicyKind::Hnr, 0.95).qos.avg_slowdown;
    assert!(hnr <= bsd, "HNR {hnr} <= BSD {bsd}");
    assert!(bsd < lsf, "BSD {bsd} < LSF {lsf}");
}

/// Figure 10: BSD provides the best ℓ2 norm of slowdowns.
#[test]
fn fig10_bsd_wins_l2() {
    let lsf = run(PolicyKind::Lsf, 0.95).qos.l2_slowdown;
    let bsd = run(PolicyKind::Bsd, 0.95).qos.l2_slowdown;
    let hnr = run(PolicyKind::Hnr, 0.95).qos.l2_slowdown;
    assert!(bsd < hnr, "BSD {bsd} < HNR {hnr}");
    assert!(bsd < lsf, "BSD {bsd} < LSF {lsf}");
}

/// Figure 11: HR is the most biased against low-selectivity low-cost
/// queries; BSD the least (bias = slowdown ratio of the lowest to highest
/// populated selectivity bucket within cost class 0).
#[test]
fn fig11_bias_ordering() {
    // Per-class statistics need a denser query population than the other
    // ordering tests; build a dedicated larger run.
    let run_big = |kind: PolicyKind| -> SimReport {
        let mean_gap = Nanos::from_millis(GAP_MS);
        let w = single_stream(&SingleStreamConfig {
            queries: 150,
            cost_classes: 5,
            utilization: 0.9,
            mean_gap,
            seed: 77,
        })
        .unwrap();
        simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(OnOffSource::lbl_like(mean_gap, 13))],
            kind.build(),
            SimConfig::new(2_500).with_seed(21),
        )
        .unwrap()
    };
    let bias = |kind: PolicyKind| -> f64 {
        let r = run_big(kind);
        let classes = r.classes.by_cost_class(0);
        assert!(
            classes.len() >= 2,
            "need at least two populated selectivity buckets"
        );
        let lo = classes.first().unwrap().1.avg_slowdown;
        let hi = classes.last().unwrap().1.avg_slowdown;
        lo / hi
    };
    let hr = bias(PolicyKind::Hr);
    let hnr = bias(PolicyKind::Hnr);
    let bsd = bias(PolicyKind::Bsd);
    assert!(hr > hnr, "HR bias {hr} > HNR bias {hnr}");
    assert!(hr > bsd, "HR bias {hr} > BSD bias {bsd}");
}

/// Figure 12: for multi-stream (window-join) workloads BSD gives the lowest
/// ℓ2, and the margin over selectivity-blind policies is large.
#[test]
fn fig12_multi_stream_l2() {
    let mean_gap = Nanos::from_millis(500);
    let w = multi_stream(&MultiStreamConfig {
        queries: 15,
        cost_classes: 5,
        utilization: 0.9,
        mean_gap,
        window_range: (Nanos::from_secs(1), Nanos::from_secs(10)),
        seed: 5,
    })
    .unwrap();
    let run = |kind: PolicyKind| {
        let sources: Vec<Box<dyn ArrivalSource>> = vec![
            Box::new(PoissonSource::new(mean_gap, 61)),
            Box::new(PoissonSource::new(mean_gap, 62)),
        ];
        simulate(
            &w.plan,
            &w.rates,
            sources,
            kind.build(),
            SimConfig::new(800).with_seed(9),
        )
        .unwrap()
        .qos
        .l2_slowdown
    };
    let bsd = run(PolicyKind::Bsd);
    let hnr = run(PolicyKind::Hnr);
    let fcfs = run(PolicyKind::Fcfs);
    let rr = run(PolicyKind::RoundRobin);
    assert!(bsd <= hnr * 1.05, "BSD {bsd} vs HNR {hnr}");
    assert!(bsd * 2.0 < fcfs, "BSD {bsd} far below FCFS {fcfs}");
    assert!(bsd * 2.0 < rr, "BSD {bsd} far below RR {rr}");
}

/// Table 2: the PDT strategy beats Max and Sum on the metric each policy
/// optimizes.
#[test]
fn table2_pdt_wins() {
    let mean_gap = Nanos::from_millis(GAP_MS);
    let w = shared(&SharedConfig {
        groups: 4,
        group_size: 10,
        cost_classes: 5,
        utilization: 0.9,
        mean_gap,
        seed: 15,
    })
    .unwrap();
    let run = |kind: PolicyKind, strat: SharingStrategy| {
        simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(OnOffSource::lbl_like(mean_gap, 77))],
            kind.build(),
            SimConfig::new(ARRIVALS).with_seed(3).with_sharing(strat),
        )
        .unwrap()
    };
    let hnr_pdt = run(PolicyKind::Hnr, SharingStrategy::Pdt).qos.avg_slowdown;
    let hnr_max = run(PolicyKind::Hnr, SharingStrategy::Max).qos.avg_slowdown;
    let hnr_sum = run(PolicyKind::Hnr, SharingStrategy::Sum).qos.avg_slowdown;
    assert!(hnr_pdt <= hnr_max, "PDT {hnr_pdt} <= Max {hnr_max}");
    assert!(hnr_pdt <= hnr_sum, "PDT {hnr_pdt} <= Sum {hnr_sum}");
    let bsd_pdt = run(PolicyKind::Bsd, SharingStrategy::Pdt).qos.l2_slowdown;
    let bsd_max = run(PolicyKind::Bsd, SharingStrategy::Max).qos.l2_slowdown;
    assert!(bsd_pdt <= bsd_max, "PDT {bsd_pdt} <= Max {bsd_max}");
}
