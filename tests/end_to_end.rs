//! Cross-crate invariants: workload → engine → metrics plumbing.

use hcq::common::Nanos;
use hcq::core::{ClusterConfig, ClusteredBsdPolicy, PolicyKind};
use hcq::engine::{simulate, SimConfig, SimReport};
use hcq::streams::{collect_arrivals, ArrivalStats, OnOffSource, PoissonSource};
use hcq::workload::{single_stream, SingleStreamConfig};

// Re-export shim: `hcq::workload` is `hcq-workload`, whose calibrate module
// exposes offered_load; alias locally for readability.
mod workload_shim {
    pub use hcq::workload::calibrate::offered_load;
}

fn build(utilization: f64) -> hcq::workload::PaperWorkload {
    single_stream(&SingleStreamConfig {
        queries: 30,
        cost_classes: 5,
        utilization,
        mean_gap: Nanos::from_millis(10),
        seed: 4,
    })
    .unwrap()
}

fn run(kind: PolicyKind, utilization: f64, seed: u64, bursty: bool) -> SimReport {
    let w = build(utilization);
    let gap = Nanos::from_millis(10);
    let src: Box<dyn hcq::streams::ArrivalSource> = if bursty {
        Box::new(OnOffSource::lbl_like(gap, seed))
    } else {
        Box::new(PoissonSource::new(gap, seed))
    };
    simulate(
        &w.plan,
        &w.rates,
        vec![src],
        kind.build(),
        SimConfig::new(1_000).with_seed(seed),
    )
    .unwrap()
}

/// With a Poisson source at the calibrated mean gap, measured utilization
/// lands near the target (drain-phase work and the source's sampling noise
/// perturb it slightly).
#[test]
fn calibration_matches_measured_utilization() {
    for target in [0.4, 0.7] {
        let r = run(PolicyKind::Fcfs, target, 2, false);
        let measured = r.measured_utilization();
        assert!(
            (measured - target).abs() < 0.12,
            "target {target}, measured {measured}"
        );
    }
}

/// The bursty LBL-like source keeps the same long-run mean rate as Poisson,
/// so arrivals-per-virtual-second agree even though the pattern differs.
#[test]
fn bursty_and_poisson_share_mean_rate() {
    let mut on_off = OnOffSource::lbl_like(Nanos::from_millis(10), 3);
    let mut poisson = PoissonSource::new(Nanos::from_millis(10), 3);
    let a = ArrivalStats::from_arrivals(&collect_arrivals(&mut on_off, 60_000));
    let b = ArrivalStats::from_arrivals(&collect_arrivals(&mut poisson, 60_000));
    let ratio = a.mean_gap().as_nanos() as f64 / b.mean_gap().as_nanos() as f64;
    assert!((0.4..2.5).contains(&ratio), "mean gap ratio {ratio}");
    // ...but the on/off source is much burstier.
    assert!(
        a.index_of_dispersion(Nanos::from_secs(2))
            > 3.0 * b.index_of_dispersion(Nanos::from_secs(2))
    );
}

/// Burstiness hurts: the same policy at the same mean load sees strictly
/// worse slowdowns under the on/off source than under Poisson.
#[test]
fn bursty_arrivals_increase_slowdown() {
    let smooth = run(PolicyKind::Hnr, 0.9, 6, false).qos.avg_slowdown;
    let bursty = run(PolicyKind::Hnr, 0.9, 6, true).qos.avg_slowdown;
    assert!(
        bursty > smooth,
        "bursty {bursty} should exceed poisson {smooth}"
    );
}

/// All policies agree on the workload realization (emissions/drops), and
/// every report's accounting is internally consistent.
#[test]
fn report_accounting_is_consistent() {
    let reference = run(PolicyKind::Fcfs, 0.8, 5, true);
    for kind in PolicyKind::ALL {
        let r = run(kind, 0.8, 5, true);
        assert_eq!(r.emitted, reference.emitted, "{}", kind.name());
        assert_eq!(r.qos.count, r.emitted, "{}", kind.name());
        assert_eq!(r.histogram.total(), r.emitted, "{}", kind.name());
        assert_eq!(r.classes.overall().count, r.emitted, "{}", kind.name());
        assert!(r.busy_time <= r.end_time, "{}", kind.name());
        assert!(r.sched_points > 0 && r.sched_ops >= r.sched_points);
    }
}

/// The clustered BSD implementations remain faithful to naive BSD outcomes
/// through the full stack.
#[test]
fn clustered_bsd_full_stack() {
    let w = build(0.9);
    let gap = Nanos::from_millis(10);
    let run_with = |policy: Box<dyn hcq::core::Policy>| {
        simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(OnOffSource::lbl_like(gap, 11))],
            policy,
            SimConfig::new(800).with_seed(11),
        )
        .unwrap()
    };
    let naive = run_with(PolicyKind::Bsd.build());
    let clustered = run_with(Box::new(ClusteredBsdPolicy::new(
        ClusterConfig::logarithmic(12),
    )));
    assert_eq!(naive.emitted, clustered.emitted);
    // Approximation quality: clustered ℓ2 within 2× of exact BSD's.
    assert!(
        clustered.qos.l2_slowdown < naive.qos.l2_slowdown * 2.0,
        "clustered {} vs naive {}",
        clustered.qos.l2_slowdown,
        naive.qos.l2_slowdown
    );
}

/// `offered_load` (the calibration target) is an exported, stable API.
#[test]
fn offered_load_is_public() {
    let w = build(0.6);
    let load = workload_shim::offered_load(&w.plan, &w.rates);
    assert!((load - 0.6).abs() < 0.01, "{load}");
}
