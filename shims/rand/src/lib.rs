//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no access to a crates.io
//! registry, so the few `rand` 0.9 entry points the simulator actually uses
//! are implemented here and wired in via a workspace path dependency:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! - [`Rng::random`] for the primitive types the workload/stream generators
//!   draw (`f64`, `f32`, `bool`, integers)
//! - [`Rng::random_range`] over `Range` / `RangeInclusive` of integers and
//!   floats
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! and high-quality, but **not** bit-compatible with upstream `StdRng`
//! (ChaCha12). Every consumer in this repo seeds explicitly via
//! `seed_from_u64`, so determinism across runs and across `--jobs` levels is
//! what matters, and that is preserved.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generators (the subset of `rand::rngs` used here).

    use crate::SeedableRng;

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Raw 64-bit output source; everything else is derived from it.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (`rand 0.9`'s `random`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value in `range` (`rand 0.9`'s `random_range`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable uniformly over their whole domain (`[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a single uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from `rng` inside the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Map a raw 64-bit draw into `[0, span)` via the widening-multiply trick.
/// `span == 0` encodes the full 2^64 domain.
fn mul_shift(raw: u64, span: u128) -> u128 {
    if span == 0 {
        raw as u128
    } else {
        (raw as u128 * span) >> 64
    }
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                // A span of exactly 2^64 (the full 64-bit domain) is encoded
                // as 0, which mul_shift treats as a raw draw.
                let span_wide = (hi - lo + 1) as u128;
                let span = if span_wide > u64::MAX as u128 { 0 } else { span_wide };
                (lo + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = f64::sample_standard(rng);
                (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "cannot sample empty range");
                let u: f64 = f64::sample_standard(rng);
                (lo + u * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = r.random_range(10u64..=20);
            assert!((10..=20).contains(&w));
            let x = r.random_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn ranges_cover_endpoints_eventually() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..=3)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = StdRng::seed_from_u64(3);
        // span == 2^64 exercises the raw-draw path.
        let _ = r.random_range(0u64..=u64::MAX);
        let _ = r.random_range(i64::MIN..=i64::MAX);
    }
}
