//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds with no crates.io access, so the API subset its
//! `benches/` targets use is implemented here: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`] /
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with `sample_size`,
//! `throughput`, `bench_with_input` and `finish`, [`Bencher::iter`],
//! [`BenchmarkId`] and [`Throughput`].
//!
//! Measurements are wall-clock: each benchmark is calibrated with one run,
//! then timed over up to `sample_size` samples with a bounded total budget,
//! and the per-iteration mean/min are printed. When the
//! `CRITERION_JSON_OUT` environment variable names a file, one JSON line per
//! benchmark (`{"id", "mean_ns", "min_ns", "elems_per_iter"}`) is appended so
//! external tooling (e.g. the `BENCH_*.json` emitter) can ingest the numbers.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample budget; iteration counts are chosen to land near this.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Hard per-benchmark budget across all samples.
const BENCH_BUDGET: Duration = Duration::from_millis(1500);

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples to aim for.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_sized(&full, self.throughput, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark `f` without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_sized(&full, self.throughput, self.sample_size, &mut f);
        self
    }

    /// End the group (upstream consumes the group; a no-op here).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function-plus-parameter id, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Work performed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`; called repeatedly by the harness.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, f: &mut F) {
    run_sized(id, throughput, 100, f)
}

fn run_sized<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut F,
) {
    // Calibration run: one iteration, also serves as warm-up.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));

    let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let per_sample = once * iters as u32;
    let samples = sample_size
        .min((BENCH_BUDGET.as_nanos() / per_sample.as_nanos().max(1)) as usize)
        .max(2);

    let mut means = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.iters = iters;
        f(&mut b);
        means.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    let min = means.iter().cloned().fold(f64::INFINITY, f64::min);

    let elems = match throughput {
        Some(Throughput::Elements(n)) => Some(n as f64),
        _ => None,
    };
    match elems {
        Some(n) if mean > 0.0 => println!(
            "{id:<50} time: {:>12} /iter  thrpt: {:>12} elem/s  ({} samples x {} iters)",
            fmt_ns(mean),
            fmt_count(n * 1e9 / mean),
            samples,
            iters
        ),
        _ => println!(
            "{id:<50} time: {:>12} /iter  ({} samples x {} iters)",
            fmt_ns(mean),
            samples,
            iters
        ),
    }

    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if !path.is_empty() {
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
                let elems_field = elems
                    .map(|n| format!("{n}"))
                    .unwrap_or_else(|| "null".into());
                let _ = writeln!(
                    file,
                    "{{\"id\":\"{id}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\
                     \"elems_per_iter\":{elems_field}}}"
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declare a benchmark group runner function (upstream-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(5);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter("p"), &1u64, |b, &n| {
            b.iter(|| n + 1)
        });
        g.finish();
    }
}
