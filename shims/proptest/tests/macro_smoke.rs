//! End-to-end check that the `proptest!` macro expansion compiles and runs
//! the same way the workspace's property tests use it.

use proptest::prelude::*;

fn helper(x: u64) -> Result<(), TestCaseError> {
    prop_assert!(x < u64::MAX, "never fires");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tuples_and_vecs(
        pairs in proptest::collection::vec((0u32..10, -5i64..5), 1..20),
        flag in any::<bool>(),
    ) {
        prop_assert!(pairs.len() < 20);
        for &(a, b) in &pairs {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
        }
        let _ = flag;
    }

    #[test]
    fn assume_and_question_mark(a in 0u64..100, b in 0u64..100) {
        prop_assume!(a != b);
        prop_assert_ne!(a, b);
        helper(a)?;
    }

    #[test]
    fn mapped_strategies(v in proptest::collection::vec(1u64..=8, 4..=4).prop_map(|v| v.len())) {
        prop_assert_eq!(v, 4);
    }

    #[test]
    fn weighted_options(o in proptest::option::weighted(0.6, (0u32..3, 0u64..9))) {
        if let Some((u, w)) = o {
            prop_assert!(u < 3 && w < 9);
        }
    }
}

proptest! {
    #[test]
    fn default_config_runs(x in any::<u64>()) {
        prop_assert!(x == x);
    }
}
