//! Value-generation strategies: the `proptest::strategy` subset this
//! workspace uses, without shrink trees — a strategy here is just a
//! deterministic sampler over a [`TestRng`].

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng as _;

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform over the whole domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// A strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().random()
            }
        }
    )*};
}

impl_any!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.inner().random_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The result of [`crate::option::weighted`].
pub struct OptionStrategy<S> {
    p_some: f64,
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(p_some: f64, inner: S) -> Self {
        OptionStrategy { p_some, inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.inner().random::<f64>() < self.p_some {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_compose() {
        let mut rng = TestRng::for_case("strategies_compose", 1);
        let s = crate::collection::vec((0u32..10, 0.0f64..1.0), 3..=5).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((3..=5).contains(&n));
        }
        let opt = crate::option::weighted(0.5, 1u64..=1);
        let mut some = 0;
        for _ in 0..200 {
            if let Some(v) = opt.generate(&mut rng) {
                assert_eq!(v, 1);
                some += 1;
            }
        }
        assert!(some > 50 && some < 150, "weighted(0.5) wildly off: {some}");
    }
}
