//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds with no crates.io access, so the subset of the
//! proptest 1.x API that this repo's property tests use is implemented here
//! and wired in via a workspace path dependency:
//!
//! - the `proptest!` macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]`)
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`
//! - [`strategy::Strategy`] with `prop_map`, integer/float range strategies,
//!   tuple strategies, `any::<T>()`, [`collection::vec`],
//!   [`option::weighted`], and [`strategy::Just`]
//!
//! Differences from upstream, by design: cases are generated from a seed
//! derived deterministically from the test's module path and name (every run
//! explores the same inputs), and there is **no shrinking** — a failing case
//! panics with its full `Debug`-formatted input instead.

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;
pub mod test_runner;

/// Per-case random source handed to [`strategy::Strategy::generate`].
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// The underlying generator (strategies sample through `rand`'s traits).
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// `Debug`-format a generated input tuple for failure reports.
#[doc(hidden)]
pub fn __fmt_inputs<T: Debug>(vals: &T) -> String {
    format!("{vals:?}")
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

pub mod option {
    //! Option strategies (`proptest::option::weighted`).

    use crate::strategy::{OptionStrategy, Strategy};

    /// `Some(value)` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy::new(p, inner)
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::Config::cases`] generated
/// cases; `prop_assert*` failures panic with the offending inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng: &mut $crate::TestRng| {
                    let __vals = (
                        $( $crate::strategy::Strategy::generate(&($strat), __rng), )+
                    );
                    let __desc = $crate::__fmt_inputs(&__vals);
                    let ( $($pat,)+ ) = __vals;
                    let __res: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            ::core::result::Result::Ok(())
                        })();
                    (__desc, __res)
                },
            );
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

/// Check a condition inside a property test; on failure the case (not the
/// whole process) is reported with its inputs. Must run where the enclosing
/// function returns `Result<(), TestCaseError>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Discard the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
