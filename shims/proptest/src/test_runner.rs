//! Case runner: drives a test closure over `Config::cases` deterministic
//! inputs, honoring rejections from `prop_assume!` and panicking with the
//! generating inputs on the first failure (no shrinking).

use std::fmt;

use crate::TestRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's precondition failed (`prop_assume!`); try another input.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (discarded) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// Run `f` until `config.cases` cases pass. `f` returns the case's
/// `Debug`-formatted inputs plus its outcome; failures panic immediately.
pub fn run_cases<F>(config: Config, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let max_attempts = config.cases.saturating_mul(16).max(1024) as u64;
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "{test_name}: gave up after {rejected} rejected cases \
                 ({passed}/{} passed)",
                config.cases
            );
        }
        let mut rng = TestRng::for_case(test_name, attempt);
        let (desc, result) = f(&mut rng);
        match result {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case {attempt}\n\
                     minimal failing input (no shrinking): {desc}\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_when_all_cases_pass() {
        run_cases(Config::with_cases(10), "t", |_| (String::new(), Ok(())));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn fails_fast_on_assertion() {
        run_cases(Config::with_cases(10), "t", |_| {
            (String::from("input"), Err(TestCaseError::fail("boom")))
        });
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn gives_up_on_pathological_rejection() {
        run_cases(Config::with_cases(10), "t", |_| {
            (String::new(), Err(TestCaseError::reject("never")))
        });
    }

    #[test]
    fn rng_streams_differ_per_case() {
        let a = TestRng::for_case("x", 1).inner().clone();
        let b = TestRng::for_case("x", 2).inner().clone();
        assert_ne!(a, b);
    }
}
