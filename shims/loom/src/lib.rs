//! Offline stand-in for the [`loom`](https://crates.io/crates/loom) model
//! checker.
//!
//! This workspace builds in environments with no access to a crates.io
//! registry, so the loom API subset `hcq-runtime`'s queue tests use is
//! implemented here and wired in via a workspace path dependency:
//!
//! - [`model`] — runs the test body many times instead of exhaustively
//!   enumerating interleavings
//! - [`thread::spawn`] / [`thread::yield_now`] — real OS threads
//! - [`sync::atomic`] — re-exports of `std::sync::atomic`
//! - [`cell::UnsafeCell`] with loom's `with`/`with_mut` closure API
//! - [`hint::spin_loop`]
//!
//! **The degradation is real and deliberate**: upstream loom explores every
//! interleaving a sequentially-consistent-bounded scheduler can produce;
//! this shim re-runs the body `LOOM_STRESS_ITERS` times (default 200) on
//! real threads, so it is a stress harness, not a proof. The tests are
//! written against loom's API so that swapping this path dependency for the
//! real crate (outside the offline container, with
//! `RUSTFLAGS="--cfg loom"`) upgrades them to exhaustive model checking
//! without a source change.

pub mod sync {
    //! `std::sync` stand-ins (loom re-exports the same names).
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    pub mod atomic {
        //! Real atomics — the shim stresses rather than models.
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
        };
    }
}

pub mod cell {
    //! Loom's instrumented cell, uninstrumented.

    /// `loom::cell::UnsafeCell`: data races are *not* detected here (the
    /// real crate checks every access against its exploration state), but
    /// the closure-based API keeps call sites portable.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wrap a value.
        pub fn new(v: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(v))
        }

        /// Immutable access through a raw pointer.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access through a raw pointer.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

pub mod thread {
    //! Real threads (loom's are cooperatively scheduled).
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

pub mod hint {
    //! Spin hints.
    pub use std::hint::spin_loop;
}

/// Number of stress iterations a [`model`] call runs, from
/// `LOOM_STRESS_ITERS` (default 200).
fn iterations() -> usize {
    std::env::var("LOOM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Run a concurrency test body repeatedly.
///
/// Upstream loom explores all interleavings of the body's loom-typed
/// operations; this stand-in re-runs the body on real threads to shake out
/// races statistically. See the crate docs for the upgrade path.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..iterations() {
        f();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_body_many_times() {
        std::env::remove_var("LOOM_STRESS_ITERS");
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        super::model(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn cell_closures_give_access() {
        let cell = super::cell::UnsafeCell::new(41);
        cell.with_mut(|p| unsafe { *p += 1 });
        assert_eq!(cell.with(|p| unsafe { *p }), 42);
    }
}
